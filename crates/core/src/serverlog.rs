//! Server-side capture log — the "ten weeks in the life of an eDonkey
//! server" modality (Aidouni, Latapy & Magnien's sibling measurement).
//!
//! Where [`crate::log`] records what *honeypots* see, this module records
//! what the *index server* handles: every LOGIN, OFFER-FILES, SEARCH,
//! GET-SOURCES, DISCONNECT and SERVER-STATUS query, as a compact
//! fixed-width record.  A ten-simulated-week capture produces tens of
//! millions of records, so the storage pipeline is built around two
//! constraints:
//!
//! * **bounded memory** — [`ServerLogWriter`] buffers at most one frame of
//!   records (a few thousand); everything else streams to disk through
//!   chunk-rotated segment files, and [`ServerLogReader`] streams back one
//!   frame at a time.  Peak RSS is a function of the frame size, never of
//!   the capture length;
//! * **crash tolerance** — segments are sequences of CRC-framed blocks
//!   (the PR 4 spool discipline): a torn tail or a flipped bit truncates
//!   the capture at the last intact frame instead of corrupting it.
//!
//! Records follow the PR 7 `PackedQueryRecord` discipline: the logical
//! [`ServerRecord`] has a pinned `#[repr(C)]` storage twin,
//! [`PackedServerRecord`], whose [`PackedServerRecord::to_wire_bytes`]
//! byte order is a frozen contract (see the layout-pinning test).  On
//! disk, frames are compressed column-wise — timestamps and session
//! tokens as zig-zag delta varints, counters as varints, 16-byte digests
//! with a same-as-previous flag — which lands well under the 56-byte raw
//! record cost without any external compression dependency.

use std::fs;
use std::io::{self, BufRead, Read, Write};
use std::path::{Path, PathBuf};

use edonkey_proto::control::crc32;
use edonkey_proto::FileId;
use netsim::SimTime;

use crate::anonymize::IpHash;

/// The query types the server-side capture distinguishes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ServerQueryKind {
    Login,
    OfferFiles,
    Search,
    GetSources,
    Disconnect,
    Status,
}

/// All kinds, in wire-tag order (index == tag).
pub const SERVER_QUERY_KINDS: [ServerQueryKind; 6] = [
    ServerQueryKind::Login,
    ServerQueryKind::OfferFiles,
    ServerQueryKind::Search,
    ServerQueryKind::GetSources,
    ServerQueryKind::Disconnect,
    ServerQueryKind::Status,
];

impl ServerQueryKind {
    /// Wire tag (also the index into per-kind count arrays).
    pub fn tag(self) -> u8 {
        match self {
            ServerQueryKind::Login => 0,
            ServerQueryKind::OfferFiles => 1,
            ServerQueryKind::Search => 2,
            ServerQueryKind::GetSources => 3,
            ServerQueryKind::Disconnect => 4,
            ServerQueryKind::Status => 5,
        }
    }

    /// Inverse of [`Self::tag`]; `None` on an invalid tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        SERVER_QUERY_KINDS.get(tag as usize).copied()
    }

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            ServerQueryKind::Login => "LOGIN",
            ServerQueryKind::OfferFiles => "OFFER-FILES",
            ServerQueryKind::Search => "SEARCH",
            ServerQueryKind::GetSources => "GET-SOURCES",
            ServerQueryKind::Disconnect => "DISCONNECT",
            ServerQueryKind::Status => "STATUS",
        }
    }
}

/// Session tokens at or above this value denote genuine peers in the
/// capture; below it they are measurement infrastructure (honeypot
/// sessions are their honeypot index, STATUS snapshots use session 0).
/// Shared between the simulator (which mints the tokens) and the analysis
/// crate (which filters on them), so it lives here in the schema.
pub const SERVER_PEER_SESSION_BASE: u64 = 1 << 32;

/// One server-handled query (step-1 anonymised: the client IP appears
/// only as its salted hash, the same [`crate::anonymize::IpHasher`] the
/// honeypots use — peer-distinctness is therefore comparable across the
/// two modalities).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServerRecord {
    /// Reception timestamp.
    pub at: SimTime,
    /// Query type.
    pub kind: ServerQueryKind,
    /// Step-1 anonymised client IP (all-zero when the query carried no
    /// usable client identity, e.g. STATUS snapshots or dropped packets).
    pub peer: IpHash,
    /// Client TCP port (0 when unknown).
    pub port: u16,
    /// Kind-specific flag: LOGIN → 1 if a high ID was granted;
    /// OFFER-FILES → 1 if the session was registered (0 = dropped or
    /// capture-only); DISCONNECT → 1 for a peer session.
    pub flag: u8,
    /// File the query concerns (GET-SOURCES, first file of OFFER-FILES);
    /// all-zero when none.
    pub file: FileId,
    /// Session token; for STATUS records this field carries the indexed
    /// file count instead (the snapshot has no session).
    pub session: u64,
    /// Kind-specific count: OFFER-FILES → files published, SEARCH →
    /// results returned, GET-SOURCES → sources returned, DISCONNECT →
    /// offers withdrawn, STATUS → connected users.
    pub payload: u32,
}

/// Byte size of [`PackedServerRecord`] — and of [`ServerRecord`]: the
/// layout audit below pins both (the same 56-byte budget as the honeypot
/// side's `PackedQueryRecord`).
pub const PACKED_SERVER_RECORD_BYTES: usize = 56;

/// The `#[repr(C)]`-stable compact storage form of a [`ServerRecord`]:
/// fields largest-first so `repr(C)` yields zero padding, enums collapsed
/// to wire tags, with a frozen byte order via [`Self::to_wire_bytes`].
#[repr(C)]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PackedServerRecord {
    /// Reception timestamp in milliseconds.
    pub at_ms: u64,
    /// Step-1 anonymised client IP digest.
    pub peer: [u8; 16],
    /// File digest (zeroed when none).
    pub file: [u8; 16],
    /// Session token (indexed-file count for STATUS).
    pub session: u64,
    /// Kind-specific count.
    pub payload: u32,
    /// Client TCP port.
    pub port: u16,
    /// Wire tag (see [`ServerQueryKind::tag`]).
    pub kind: u8,
    /// Kind-specific flag.
    pub flag: u8,
}

const _: () = assert!(std::mem::size_of::<PackedServerRecord>() == PACKED_SERVER_RECORD_BYTES);
const _: () = assert!(std::mem::size_of::<ServerRecord>() == PACKED_SERVER_RECORD_BYTES);
const _: () = assert!(std::mem::align_of::<PackedServerRecord>() == 8);

impl PackedServerRecord {
    /// Collapses a logical record into the storage form.
    pub fn pack(r: &ServerRecord) -> Self {
        PackedServerRecord {
            at_ms: r.at.as_millis(),
            peer: r.peer.0,
            file: r.file.0,
            session: r.session,
            payload: r.payload,
            port: r.port,
            kind: r.kind.tag(),
            flag: r.flag,
        }
    }

    /// Expands back to the logical record; `None` on an invalid kind tag
    /// (corrupt storage).
    pub fn unpack(&self) -> Option<ServerRecord> {
        Some(ServerRecord {
            at: SimTime::from_millis(self.at_ms),
            kind: ServerQueryKind::from_tag(self.kind)?,
            peer: IpHash(self.peer),
            port: self.port,
            flag: self.flag,
            file: FileId(self.file),
            session: self.session,
            payload: self.payload,
        })
    }

    /// Serialises in the frozen wire field order (at, kind, peer, port,
    /// flag, file, session, payload; little-endian integers) — mirroring
    /// the honeypot record codec's historical shape.
    pub fn to_wire_bytes(&self) -> [u8; PACKED_SERVER_RECORD_BYTES] {
        let mut b = [0u8; PACKED_SERVER_RECORD_BYTES];
        b[0..8].copy_from_slice(&self.at_ms.to_le_bytes());
        b[8] = self.kind;
        b[9..25].copy_from_slice(&self.peer);
        b[25..27].copy_from_slice(&self.port.to_le_bytes());
        b[27] = self.flag;
        b[28..44].copy_from_slice(&self.file);
        b[44..52].copy_from_slice(&self.session.to_le_bytes());
        b[52..56].copy_from_slice(&self.payload.to_le_bytes());
        b
    }

    /// Inverse of [`Self::to_wire_bytes`].
    pub fn from_wire_bytes(b: &[u8; PACKED_SERVER_RECORD_BYTES]) -> Self {
        let arr = |lo: usize| -> [u8; 16] { b[lo..lo + 16].try_into().expect("fixed range") };
        PackedServerRecord {
            at_ms: u64::from_le_bytes(b[0..8].try_into().expect("fixed range")),
            kind: b[8],
            peer: arr(9),
            port: u16::from_le_bytes(b[25..27].try_into().expect("fixed range")),
            flag: b[27],
            file: arr(28),
            session: u64::from_le_bytes(b[44..52].try_into().expect("fixed range")),
            payload: u32::from_le_bytes(b[52..56].try_into().expect("fixed range")),
        }
    }
}

// ---------------------------------------------------------------------------
// Varint / zig-zag primitives (LEB128).

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None // over-long encoding: corrupt
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------------
// Frame codec: column-wise, schema-aware compression.

/// Encodes one frame of packed records into `out` (cleared first).
///
/// Column order: count, at-deltas (zig-zag varint, first absolute), kind
/// bytes, flag bytes, port varints, payload varints, session deltas
/// (zig-zag varint, first absolute), then peer and file digests each as a
/// varint index into the frame-local dictionary of digests in first-seen
/// order — an index equal to the current dictionary size introduces a
/// novel digest and is followed by its 16 raw bytes.
fn encode_frame(records: &[PackedServerRecord], out: &mut Vec<u8>) {
    out.clear();
    put_varint(out, records.len() as u64);
    let mut prev_at = 0u64;
    for (i, r) in records.iter().enumerate() {
        if i == 0 {
            put_varint(out, r.at_ms);
        } else {
            put_varint(out, zigzag(r.at_ms.wrapping_sub(prev_at) as i64));
        }
        prev_at = r.at_ms;
    }
    for r in records {
        out.push(r.kind);
    }
    for r in records {
        out.push(r.flag);
    }
    for r in records {
        put_varint(out, u64::from(r.port));
    }
    for r in records {
        put_varint(out, u64::from(r.payload));
    }
    let mut prev_session = 0u64;
    for (i, r) in records.iter().enumerate() {
        if i == 0 {
            put_varint(out, r.session);
        } else {
            put_varint(out, zigzag(r.session.wrapping_sub(prev_session) as i64));
        }
        prev_session = r.session;
    }
    encode_digest_column(records.iter().map(|r| &r.peer), out);
    encode_digest_column(records.iter().map(|r| &r.file), out);
}

fn encode_digest_column<'a>(digests: impl Iterator<Item = &'a [u8; 16]>, out: &mut Vec<u8>) {
    let mut dict: std::collections::HashMap<[u8; 16], u64> = std::collections::HashMap::new();
    for d in digests {
        if let Some(&idx) = dict.get(d) {
            put_varint(out, idx);
        } else {
            let idx = dict.len() as u64;
            put_varint(out, idx);
            out.extend_from_slice(d);
            dict.insert(*d, idx);
        }
    }
}

/// Decodes one digest column in place via `set`; `None` on corruption.
fn decode_digest_column(
    buf: &[u8],
    pos: &mut usize,
    records: &mut [PackedServerRecord],
    set: fn(&mut PackedServerRecord, [u8; 16]),
) -> Option<()> {
    let mut dict: Vec<[u8; 16]> = Vec::new();
    for r in records.iter_mut() {
        let idx = get_varint(buf, pos)? as usize;
        let digest = match idx.cmp(&dict.len()) {
            std::cmp::Ordering::Less => dict[idx],
            std::cmp::Ordering::Equal => {
                let d: [u8; 16] = buf.get(*pos..*pos + 16)?.try_into().expect("fixed range");
                *pos += 16;
                dict.push(d);
                d
            }
            std::cmp::Ordering::Greater => return None, // forward reference: corrupt
        };
        set(r, digest);
    }
    Some(())
}

/// Decodes one frame; `None` on any structural corruption.
fn decode_frame(buf: &[u8]) -> Option<Vec<PackedServerRecord>> {
    let mut pos = 0usize;
    let count = get_varint(buf, &mut pos)? as usize;
    if count > MAX_FRAME_RECORDS {
        return None;
    }
    let mut records = vec![
        PackedServerRecord {
            at_ms: 0,
            peer: [0; 16],
            file: [0; 16],
            session: 0,
            payload: 0,
            port: 0,
            kind: 0,
            flag: 0,
        };
        count
    ];
    let mut prev = 0u64;
    for (i, r) in records.iter_mut().enumerate() {
        let v = get_varint(buf, &mut pos)?;
        r.at_ms = if i == 0 { v } else { prev.wrapping_add(unzigzag(v) as u64) };
        prev = r.at_ms;
    }
    for r in records.iter_mut() {
        r.kind = *buf.get(pos)?;
        pos += 1;
    }
    for r in records.iter_mut() {
        r.flag = *buf.get(pos)?;
        pos += 1;
    }
    for r in records.iter_mut() {
        r.port = u16::try_from(get_varint(buf, &mut pos)?).ok()?;
    }
    for r in records.iter_mut() {
        r.payload = u32::try_from(get_varint(buf, &mut pos)?).ok()?;
    }
    prev = 0;
    for (i, r) in records.iter_mut().enumerate() {
        let v = get_varint(buf, &mut pos)?;
        r.session = if i == 0 { v } else { prev.wrapping_add(unzigzag(v) as u64) };
        prev = r.session;
    }
    decode_digest_column(buf, &mut pos, &mut records, |r, d| r.peer = d)?;
    decode_digest_column(buf, &mut pos, &mut records, |r, d| r.file = d)?;
    if pos != buf.len() {
        return None; // trailing garbage inside a CRC-clean frame: corrupt
    }
    Some(records)
}

// ---------------------------------------------------------------------------
// Segment files.

/// Segment file magic.
pub const SEGMENT_MAGIC: [u8; 4] = *b"EDSL";
/// Segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Upper bound on records per frame a reader will accept (corruption
/// guard; writers stay far below it).
pub const MAX_FRAME_RECORDS: usize = 1 << 20;
/// Upper bound on a frame's encoded byte length a reader will accept.
const MAX_FRAME_BYTES: u32 = 128 << 20;

fn segment_name(index: u32) -> String {
    format!("seg-{index:05}.edsl")
}

/// Capture-wide statistics returned by [`ServerLogWriter::finish`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerLogStats {
    /// Segment files written.
    pub segments: u32,
    /// Records captured.
    pub records: u64,
    /// Records × 56: what the capture would cost uncompressed.
    pub raw_bytes: u64,
    /// Bytes actually written (headers + frames).
    pub compressed_bytes: u64,
}

impl ServerLogStats {
    /// Mean on-disk cost per record.
    pub fn bytes_per_record(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        self.compressed_bytes as f64 / self.records as f64
    }
}

/// Streaming, chunk-rotated, compressed server-log writer.
///
/// Memory use is one frame of records plus one encode buffer, regardless
/// of capture length.  Frames are flushed as `[len:u32][crc32:u32][block]`
/// into `seg-NNNNN.edsl` files that rotate every
/// `segment_records` records.
pub struct ServerLogWriter {
    dir: PathBuf,
    frame_records: usize,
    segment_records: u64,
    frame: Vec<PackedServerRecord>,
    out: Option<io::BufWriter<fs::File>>,
    seg_records: u64,
    scratch: Vec<u8>,
    stats: ServerLogStats,
    fail_next_flush: bool,
}

impl ServerLogWriter {
    /// Opens a fresh capture under `dir` (created if absent; stale
    /// `.edsl` segments from a previous capture are removed so a rerun
    /// can never interleave two captures).
    pub fn create(dir: &Path, frame_records: usize, segment_records: u64) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "edsl") {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(ServerLogWriter {
            dir: dir.to_path_buf(),
            frame_records: frame_records.clamp(1, MAX_FRAME_RECORDS),
            segment_records: segment_records.max(1),
            frame: Vec::new(),
            out: None,
            seg_records: 0,
            scratch: Vec::new(),
            stats: ServerLogStats::default(),
            fail_next_flush: false,
        })
    }

    /// Test/chaos hook: the next frame flush fails with an injected I/O
    /// error before any byte is written.  Self-contained so the fault can
    /// be exercised without a real full disk.
    pub fn inject_write_fault(&mut self) {
        self.fail_next_flush = true;
    }

    /// Statistics accumulated so far (what [`Self::finish`] would return
    /// for the already-flushed portion).  Lets a capture that must stop
    /// early — e.g. on a write failure — still report what made it out.
    pub fn stats(&self) -> ServerLogStats {
        self.stats
    }

    /// Appends one record (buffered; durable after [`Self::finish`] or
    /// the enclosing frame flush).
    pub fn push(&mut self, record: &ServerRecord) -> io::Result<()> {
        self.frame.push(PackedServerRecord::pack(record));
        if self.frame.len() >= self.frame_records {
            self.flush_frame()?;
        }
        Ok(())
    }

    fn flush_frame(&mut self) -> io::Result<()> {
        if self.frame.is_empty() {
            return Ok(());
        }
        if self.fail_next_flush {
            self.fail_next_flush = false;
            return Err(io::Error::other("injected serverlog write fault"));
        }
        if self.out.is_none() {
            let path = self.dir.join(segment_name(self.stats.segments));
            let mut w = io::BufWriter::new(fs::File::create(path)?);
            w.write_all(&SEGMENT_MAGIC)?;
            w.write_all(&SEGMENT_VERSION.to_le_bytes())?;
            w.write_all(&self.stats.segments.to_le_bytes())?;
            self.stats.compressed_bytes += 12;
            self.stats.segments += 1;
            self.out = Some(w);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_frame(&self.frame, &mut scratch);
        let crc = crc32(&scratch);
        let out = self.out.as_mut().expect("segment just ensured");
        out.write_all(&(scratch.len() as u32).to_le_bytes())?;
        out.write_all(&crc.to_le_bytes())?;
        out.write_all(&scratch)?;
        self.stats.records += self.frame.len() as u64;
        self.stats.raw_bytes += (self.frame.len() * PACKED_SERVER_RECORD_BYTES) as u64;
        self.stats.compressed_bytes += 8 + scratch.len() as u64;
        self.seg_records += self.frame.len() as u64;
        self.frame.clear();
        self.scratch = scratch;
        if self.seg_records >= self.segment_records {
            let mut w = self.out.take().expect("segment open");
            w.flush()?;
            self.seg_records = 0;
        }
        Ok(())
    }

    /// Flushes the tail frame, closes the current segment and returns the
    /// capture statistics.
    pub fn finish(mut self) -> io::Result<ServerLogStats> {
        self.flush_frame()?;
        if let Some(mut w) = self.out.take() {
            w.flush()?;
        }
        Ok(self.stats)
    }

    /// Records buffered or written so far.
    pub fn records(&self) -> u64 {
        self.stats.records + self.frame.len() as u64
    }
}

/// Streaming reader over a capture directory.
///
/// Iterates records in capture order, one decoded frame in memory at a
/// time.  A torn tail or corrupt frame ends iteration cleanly at the last
/// intact frame with [`Self::truncated`] set — the PR 4 spool recovery
/// contract.
pub struct ServerLogReader {
    segments: Vec<PathBuf>,
    next_segment: usize,
    cur: Option<io::BufReader<fs::File>>,
    frame: Vec<ServerRecord>,
    frame_pos: usize,
    truncated: bool,
    records_read: u64,
    skip_corrupt: bool,
    corrupt_frames: u64,
}

impl ServerLogReader {
    /// Opens the capture under `dir`.
    pub fn open(dir: &Path) -> io::Result<Self> {
        let mut segments: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "edsl"))
            .collect();
        segments.sort();
        Ok(ServerLogReader {
            segments,
            next_segment: 0,
            cur: None,
            frame: Vec::new(),
            frame_pos: 0,
            truncated: false,
            records_read: 0,
            skip_corrupt: false,
            corrupt_frames: 0,
        })
    }

    /// Switches to resilient mode: an *interior* frame whose CRC or
    /// contents fail is skipped (counted in [`Self::corrupt_frames`]) and
    /// iteration resumes at the next frame boundary, instead of truncating
    /// the capture there.  A torn tail — a frame whose bytes physically run
    /// out, or a header too damaged to find the next boundary — still
    /// truncates, because there is nothing to resync on.
    pub fn set_skip_corrupt(&mut self, on: bool) {
        self.skip_corrupt = on;
    }

    /// Interior frames dropped in resilient mode (see
    /// [`Self::set_skip_corrupt`]).
    pub fn corrupt_frames(&self) -> u64 {
        self.corrupt_frames
    }

    /// Whether iteration stopped early on a torn or corrupt tail.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Records yielded so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// The next record, or `None` at end of capture (clean or truncated —
    /// check [`Self::truncated`]).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<ServerRecord> {
        loop {
            if self.frame_pos < self.frame.len() {
                let r = self.frame[self.frame_pos];
                self.frame_pos += 1;
                self.records_read += 1;
                return Some(r);
            }
            if self.truncated {
                return None;
            }
            if !self.load_next_frame() {
                return None;
            }
        }
    }

    /// Reads the next frame into `self.frame`; `false` at end of capture.
    fn load_next_frame(&mut self) -> bool {
        loop {
            if self.cur.is_none() {
                if self.next_segment >= self.segments.len() {
                    return false;
                }
                let path = &self.segments[self.next_segment];
                self.next_segment += 1;
                let Ok(file) = fs::File::open(path) else {
                    self.truncated = true;
                    return false;
                };
                let mut reader = io::BufReader::new(file);
                let mut header = [0u8; 12];
                if reader.read_exact(&mut header).is_err()
                    || header[0..4] != SEGMENT_MAGIC
                    || u32::from_le_bytes(header[4..8].try_into().expect("fixed range"))
                        != SEGMENT_VERSION
                {
                    self.truncated = true;
                    return false;
                }
                self.cur = Some(reader);
            }
            let reader = self.cur.as_mut().expect("segment just ensured");
            // End of this segment?  (Clean EOF exactly at a frame boundary.)
            match reader.fill_buf() {
                Ok([]) => {
                    self.cur = None;
                    continue;
                }
                Ok(_) => {}
                Err(_) => {
                    self.truncated = true;
                    return false;
                }
            }
            let mut head = [0u8; 8];
            if reader.read_exact(&mut head).is_err() {
                self.truncated = true; // torn mid-header
                return false;
            }
            let len = u32::from_le_bytes(head[0..4].try_into().expect("fixed range"));
            let crc_expected = u32::from_le_bytes(head[4..8].try_into().expect("fixed range"));
            if len > MAX_FRAME_BYTES {
                self.truncated = true;
                return false;
            }
            let mut block = vec![0u8; len as usize];
            if reader.read_exact(&mut block).is_err() {
                self.truncated = true; // torn mid-frame
                return false;
            }
            if crc32(&block) != crc_expected {
                // Bit flip inside a fully-present frame: the length header
                // was sane, so the next boundary is known — resilient mode
                // can drop just this frame and carry on.
                if self.skip_corrupt {
                    self.corrupt_frames += 1;
                    continue;
                }
                self.truncated = true;
                return false;
            }
            let Some(packed) = decode_frame(&block) else {
                if self.skip_corrupt {
                    self.corrupt_frames += 1;
                    continue;
                }
                self.truncated = true;
                return false;
            };
            self.frame.clear();
            let mut bad_record = false;
            for p in &packed {
                let Some(r) = p.unpack() else {
                    bad_record = true;
                    break;
                };
                self.frame.push(r);
            }
            if bad_record {
                self.frame.clear();
                if self.skip_corrupt {
                    self.corrupt_frames += 1;
                    continue;
                }
                self.truncated = true;
                return false;
            }
            self.frame_pos = 0;
            if self.frame.is_empty() {
                continue; // an empty frame is legal, just pointless
            }
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> ServerRecord {
        let kind = SERVER_QUERY_KINDS[(i % 6) as usize];
        ServerRecord {
            at: SimTime::from_millis(1_000 * i),
            kind,
            peer: IpHash([(i % 7) as u8; 16]),
            port: 4662 + (i % 3) as u16,
            flag: (i % 2) as u8,
            file: FileId([(i % 4) as u8; 16]),
            session: SERVER_PEER_SESSION_BASE + i / 3,
            payload: (i * 13 % 97) as u32,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("edsl-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn read_all(dir: &Path) -> (Vec<ServerRecord>, bool) {
        let mut reader = ServerLogReader::open(dir).unwrap();
        let mut out = Vec::new();
        while let Some(r) = reader.next() {
            out.push(r);
        }
        (out, reader.truncated())
    }

    #[test]
    fn kind_tags_round_trip() {
        for kind in SERVER_QUERY_KINDS {
            assert_eq!(ServerQueryKind::from_tag(kind.tag()), Some(kind));
            assert!(!kind.name().is_empty());
        }
        assert_eq!(ServerQueryKind::from_tag(6), None);
    }

    #[test]
    fn packed_record_round_trips() {
        for i in 0..24 {
            let r = sample(i);
            let p = PackedServerRecord::pack(&r);
            assert_eq!(p.unpack(), Some(r), "pack/unpack must be lossless");
            let bytes = p.to_wire_bytes();
            assert_eq!(PackedServerRecord::from_wire_bytes(&bytes), p, "byte round trip");
        }
    }

    #[test]
    fn packed_record_rejects_corrupt_tag() {
        let mut p = PackedServerRecord::pack(&sample(0));
        p.kind = 9;
        assert_eq!(p.unpack(), None);
    }

    #[test]
    fn packed_record_wire_layout_is_pinned() {
        // The byte offsets are the storage contract; a change here is a
        // format break and must bump SEGMENT_VERSION instead.
        let r = ServerRecord {
            at: SimTime::from_millis(0x0102_0304_0506_0708),
            kind: ServerQueryKind::GetSources,
            peer: IpHash([0xAA; 16]),
            port: 0xBEEF,
            flag: 1,
            file: FileId([0xCC; 16]),
            session: 0x1112_1314_1516_1718,
            payload: 0x2122_2324,
        };
        let b = PackedServerRecord::pack(&r).to_wire_bytes();
        assert_eq!(&b[0..8], &0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(b[8], 3, "GET-SOURCES tag");
        assert_eq!(&b[9..25], &[0xAA; 16]);
        assert_eq!(&b[25..27], &0xBEEFu16.to_le_bytes());
        assert_eq!(b[27], 1, "flag");
        assert_eq!(&b[28..44], &[0xCC; 16]);
        assert_eq!(&b[44..52], &0x1112_1314_1516_1718u64.to_le_bytes());
        assert_eq!(&b[52..56], &0x2122_2324u32.to_le_bytes());
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
        for v in [-1i64, 0, 1, i64::MIN, i64::MAX, -123456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn frame_codec_round_trips_and_compresses() {
        let records: Vec<PackedServerRecord> =
            (0..5_000).map(|i| PackedServerRecord::pack(&sample(i))).collect();
        let mut buf = Vec::new();
        encode_frame(&records, &mut buf);
        assert_eq!(decode_frame(&buf).as_deref(), Some(&records[..]));
        assert!(
            buf.len() < records.len() * PACKED_SERVER_RECORD_BYTES / 2,
            "frame must compress at least 2x on realistic columns ({} vs {})",
            buf.len(),
            records.len() * PACKED_SERVER_RECORD_BYTES
        );
        // Structural corruption is rejected, not mis-decoded.
        assert_eq!(decode_frame(&buf[..buf.len() - 1]), None, "truncated frame");
        let empty: &[PackedServerRecord] = &[];
        encode_frame(empty, &mut buf);
        assert_eq!(decode_frame(&buf).as_deref(), Some(empty));
    }

    #[test]
    fn writer_reader_round_trip_with_rotation() {
        let dir = tmp_dir("roundtrip");
        let n = 10_000u64;
        let mut w = ServerLogWriter::create(&dir, 256, 2_000).unwrap();
        for i in 0..n {
            w.push(&sample(i)).unwrap();
        }
        assert_eq!(w.records(), n);
        let stats = w.finish().unwrap();
        assert_eq!(stats.records, n);
        assert_eq!(stats.segments, 5, "2k-record segments over 10k records");
        assert_eq!(stats.raw_bytes, n * PACKED_SERVER_RECORD_BYTES as u64);
        assert!(
            stats.bytes_per_record() < PACKED_SERVER_RECORD_BYTES as f64 / 2.0,
            "compression too weak: {} B/record",
            stats.bytes_per_record()
        );
        let (read, truncated) = read_all(&dir);
        assert!(!truncated);
        assert_eq!(read.len() as u64, n);
        for (i, r) in read.iter().enumerate() {
            assert_eq!(*r, sample(i as u64), "record {i}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_cleanly() {
        let dir = tmp_dir("torn");
        let mut w = ServerLogWriter::create(&dir, 100, u64::MAX).unwrap();
        for i in 0..1_000 {
            w.push(&sample(i)).unwrap();
        }
        w.finish().unwrap();
        // Tear the single segment's tail mid-frame.
        let seg = dir.join(segment_name(0));
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 37]).unwrap();
        let (read, truncated) = read_all(&dir);
        assert!(truncated, "torn tail must be reported");
        assert_eq!(read.len(), 900, "all intact frames survive");
        assert_eq!(read[899], sample(899));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_truncates_at_crc() {
        let dir = tmp_dir("flip");
        let mut w = ServerLogWriter::create(&dir, 100, u64::MAX).unwrap();
        for i in 0..300 {
            w.push(&sample(i)).unwrap();
        }
        w.finish().unwrap();
        let seg = dir.join(segment_name(0));
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();
        let (read, truncated) = read_all(&dir);
        assert!(truncated);
        assert!(read.len() < 300, "corrupt frame must not be served");
        assert_eq!(read.len() % 100, 0, "only whole intact frames survive");
        for (i, r) in read.iter().enumerate() {
            assert_eq!(*r, sample(i as u64));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_bit_flip_is_skipped_in_resilient_mode() {
        let dir = tmp_dir("flip-skip");
        let mut w = ServerLogWriter::create(&dir, 100, u64::MAX).unwrap();
        for i in 0..300 {
            w.push(&sample(i)).unwrap();
        }
        w.finish().unwrap();
        // Flip one byte inside the *second* frame's block — interior
        // damage with intact frames on both sides.
        let seg = dir.join(segment_name(0));
        let mut bytes = fs::read(&seg).unwrap();
        // Frame layout after the 12-byte segment header: [len][crc][block].
        let first_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let second_block_at = 12 + 8 + first_len + 8;
        bytes[second_block_at + 10] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();

        // Default mode: the capture truncates at the damaged frame.
        let (read, truncated) = read_all(&dir);
        assert!(truncated);
        assert_eq!(read.len(), 100, "default mode stops before the bad frame");

        // Resilient mode: the frame is detected, counted and skipped; the
        // third frame is still served.
        let mut reader = ServerLogReader::open(&dir).unwrap();
        reader.set_skip_corrupt(true);
        let mut read = Vec::new();
        while let Some(r) = reader.next() {
            read.push(r);
        }
        assert!(!reader.truncated(), "interior damage must not truncate");
        assert_eq!(reader.corrupt_frames(), 1, "the flip is surfaced, not silent");
        assert_eq!(read.len(), 200, "both intact frames survive");
        for (i, r) in read.iter().enumerate() {
            let expect = if i < 100 { i as u64 } else { i as u64 + 100 };
            assert_eq!(*r, sample(expect));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_fault_fails_one_flush_then_recovers() {
        let dir = tmp_dir("wfault");
        let mut w = ServerLogWriter::create(&dir, 10, u64::MAX).unwrap();
        for i in 0..10 {
            w.push(&sample(i)).unwrap();
        }
        w.inject_write_fault();
        // Filling the next frame hits the armed fault at its flush
        // boundary, before a byte is written.
        for i in 10..19 {
            w.push(&sample(i)).unwrap();
        }
        assert!(w.push(&sample(19)).is_err(), "armed fault must surface");
        assert_eq!(w.stats().records, 10, "only the first frame landed");
        // The fault is one-shot: the buffered frame flushes at the next
        // boundary and nothing on disk was damaged.
        w.push(&sample(20)).unwrap();
        let stats = w.finish().unwrap();
        assert_eq!(stats.records, 21);
        let (read, truncated) = read_all(&dir);
        assert!(!truncated);
        assert_eq!(read.len(), 21);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_capture_reads_empty() {
        let dir = tmp_dir("empty");
        let w = ServerLogWriter::create(&dir, 16, 100).unwrap();
        let stats = w.finish().unwrap();
        assert_eq!((stats.segments, stats.records), (0, 0));
        assert_eq!(stats.bytes_per_record(), 0.0);
        let (read, truncated) = read_all(&dir);
        assert!(read.is_empty() && !truncated);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_removes_stale_segments() {
        let dir = tmp_dir("stale");
        let mut w = ServerLogWriter::create(&dir, 16, 100).unwrap();
        for i in 0..500 {
            w.push(&sample(i)).unwrap();
        }
        w.finish().unwrap();
        // A fresh capture over the same directory must not inherit the old
        // run's segments.
        let mut w = ServerLogWriter::create(&dir, 16, 100).unwrap();
        w.push(&sample(0)).unwrap();
        w.finish().unwrap();
        let (read, truncated) = read_all(&dir);
        assert!(!truncated);
        assert_eq!(read.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
