//! The merged, fully anonymised measurement dataset the manager produces.
//!
//! After the manager has collected every honeypot's log chunks, it performs
//! step-2 anonymisation (hash → dense integer, coherent across logs),
//! unifies the per-honeypot name/file tables into global ones, and applies
//! word-frequency anonymisation to file names.  The result,
//! [`MeasurementLog`], is what the analysis crate consumes to regenerate
//! every table and figure of the paper.

use edonkey_proto::UserId;
use netsim::SimTime;
use serde::{Deserialize, Serialize};

use crate::anonymize::AnonPeerId;
use crate::log::{FileIdx, FileTable, NameIdx, QueryKind};
use crate::strategy::ContentStrategy;
use crate::types::{HoneypotId, IdStatus, ServerInfo};

/// Static description of one honeypot within the merged dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HoneypotMeta {
    pub id: HoneypotId,
    pub content: ContentStrategy,
    pub server: ServerInfo,
}

/// One fully anonymised query record.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AnonRecord {
    pub at: SimTime,
    pub honeypot: HoneypotId,
    pub kind: QueryKind,
    /// Step-2 anonymised peer identifier.
    pub peer: AnonPeerId,
    pub port: u16,
    pub id_status: IdStatus,
    pub user_id: UserId,
    /// Index into [`MeasurementLog::peer_names`].
    pub name: NameIdx,
    pub version: u32,
    /// Index into [`MeasurementLog::files`]; [`crate::log::FILE_NONE`] for
    /// HELLO records.
    pub file: FileIdx,
}

/// One anonymised shared-file list observation.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AnonSharedList {
    pub at: SimTime,
    pub honeypot: HoneypotId,
    pub peer: AnonPeerId,
    pub files: Vec<FileIdx>,
}

/// The merged measurement dataset.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MeasurementLog {
    /// Participating honeypots, indexed by `HoneypotId.0`.
    pub honeypots: Vec<HoneypotMeta>,
    /// Every logged query, in collection order (honeypot-major, then
    /// chronological within a honeypot's chunks).
    pub records: Vec<AnonRecord>,
    /// Every shared-file list retrieved from peers.
    pub shared_lists: Vec<AnonSharedList>,
    /// Global interned peer client names.
    pub peer_names: Vec<String>,
    /// Global deduplicated file table (names already word-anonymised).
    pub files: FileTable,
    /// Number of distinct peers (== number of step-2 integers assigned).
    pub distinct_peers: u32,
    /// Measurement duration (the configured horizon).
    pub duration: SimTime,
    /// Number of files advertised by the honeypots at the end of the
    /// measurement (Table I's "number of shared files").
    pub shared_files_final: u32,
}

impl MeasurementLog {
    /// Records of a given kind.
    pub fn records_of(&self, kind: QueryKind) -> impl Iterator<Item = &AnonRecord> {
        self.records.iter().filter(move |r| r.kind == kind)
    }

    /// Honeypot IDs using the given content strategy.
    pub fn honeypots_with(&self, content: ContentStrategy) -> Vec<HoneypotId> {
        self.honeypots.iter().filter(|h| h.content == content).map(|h| h.id).collect()
    }

    /// Total number of query records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of distinct files observed (queried or listed).
    pub fn distinct_files(&self) -> usize {
        self.files.len()
    }

    /// Total size of distinct observed files in bytes (Table I's "space
    /// used by distinct files").
    pub fn distinct_files_size(&self) -> u64 {
        self.files.total_size()
    }

    /// Sanity checks of the dataset's internal invariants; returns a list
    /// of violations (empty when consistent).  Used by integration tests
    /// and by the experiment runner before analysis.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let n_names = self.peer_names.len() as u32;
        let n_files = self.files.len() as u32;
        for (i, r) in self.records.iter().enumerate() {
            if r.peer.0 >= self.distinct_peers {
                problems.push(format!("record {i}: peer id {} out of range", r.peer.0));
            }
            if r.name >= n_names {
                problems.push(format!("record {i}: name index {} out of range", r.name));
            }
            if r.file != crate::log::FILE_NONE && r.file >= n_files {
                problems.push(format!("record {i}: file index {} out of range", r.file));
            }
            if r.kind == QueryKind::Hello && r.file != crate::log::FILE_NONE {
                problems.push(format!("record {i}: HELLO with a file index"));
            }
            if (r.honeypot.0 as usize) >= self.honeypots.len() {
                problems.push(format!("record {i}: honeypot {} unknown", r.honeypot.0));
            }
            if problems.len() > 20 {
                problems.push("… further problems suppressed".into());
                return problems;
            }
        }
        for (i, l) in self.shared_lists.iter().enumerate() {
            if l.peer.0 >= self.distinct_peers {
                problems.push(format!("shared list {i}: peer id out of range"));
            }
            if l.files.iter().any(|&f| f >= n_files) {
                problems.push(format!("shared list {i}: file index out of range"));
            }
            if problems.len() > 20 {
                problems.push("… further problems suppressed".into());
                break;
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::FILE_NONE;
    use edonkey_proto::Ipv4;

    fn meta(id: u32, content: ContentStrategy) -> HoneypotMeta {
        HoneypotMeta {
            id: HoneypotId(id),
            content,
            server: ServerInfo::new("s", Ipv4::new(1, 1, 1, 1), 4661),
        }
    }

    fn record(peer: u32, kind: QueryKind, file: FileIdx) -> AnonRecord {
        AnonRecord {
            at: SimTime::ZERO,
            honeypot: HoneypotId(0),
            kind,
            peer: AnonPeerId(peer),
            port: 4662,
            id_status: IdStatus::High,
            user_id: UserId::from_seed(b"u"),
            name: 0,
            version: 0,
            file,
        }
    }

    fn base_log() -> MeasurementLog {
        let mut files = FileTable::new();
        files.intern(edonkey_proto::FileId::from_seed(b"f"), "f", 10);
        MeasurementLog {
            honeypots: vec![
                meta(0, ContentStrategy::NoContent),
                meta(1, ContentStrategy::RandomContent),
            ],
            records: vec![
                record(0, QueryKind::Hello, FILE_NONE),
                record(0, QueryKind::StartUpload, 0),
                record(1, QueryKind::RequestPart, 0),
            ],
            shared_lists: vec![AnonSharedList {
                at: SimTime::ZERO,
                honeypot: HoneypotId(0),
                peer: AnonPeerId(1),
                files: vec![0],
            }],
            peer_names: vec!["eMule".into()],
            files,
            distinct_peers: 2,
            duration: SimTime::from_days(1),
            shared_files_final: 4,
        }
    }

    #[test]
    fn valid_log_passes_validation() {
        assert!(base_log().validate().is_empty());
    }

    #[test]
    fn out_of_range_peer_detected() {
        let mut log = base_log();
        log.records.push(record(99, QueryKind::Hello, FILE_NONE));
        assert!(!log.validate().is_empty());
    }

    #[test]
    fn hello_with_file_detected() {
        let mut log = base_log();
        log.records.push(record(0, QueryKind::Hello, 0));
        assert!(log.validate().iter().any(|p| p.contains("HELLO with a file")));
    }

    #[test]
    fn strategy_grouping() {
        let log = base_log();
        assert_eq!(log.honeypots_with(ContentStrategy::NoContent), vec![HoneypotId(0)]);
        assert_eq!(log.honeypots_with(ContentStrategy::RandomContent), vec![HoneypotId(1)]);
    }

    #[test]
    fn kind_filter_and_stats() {
        let log = base_log();
        assert_eq!(log.records_of(QueryKind::Hello).count(), 1);
        assert_eq!(log.len(), 3);
        assert_eq!(log.distinct_files(), 1);
        assert_eq!(log.distinct_files_size(), 10);
    }
}
