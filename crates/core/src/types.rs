//! Common identifiers and metadata shared by the honeypot platform.

use edonkey_proto::{ClientId, Ipv4};
use netsim::SimTime;
use serde::{Deserialize, Serialize};

/// Identifier of one honeypot within a measurement (0-based index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct HoneypotId(pub u32);

impl std::fmt::Display for HoneypotId {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fm, "hp{:02}", self.0)
    }
}

/// Description of the eDonkey server a honeypot is connected to.  The paper
/// records server name, IP and port with every log (§III-B).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ServerInfo {
    pub name: String,
    pub ip: Ipv4,
    pub port: u16,
}

impl ServerInfo {
    pub fn new(name: impl Into<String>, ip: Ipv4, port: u16) -> Self {
        ServerInfo { name: name.into(), ip, port }
    }
}

/// Whether a peer holds a directly-reachable (high) or NATed (low) ID.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IdStatus {
    High,
    Low,
}

impl IdStatus {
    pub fn of(client_id: ClientId) -> Self {
        if client_id.is_high() {
            IdStatus::High
        } else {
            IdStatus::Low
        }
    }
}

/// Liveness of a honeypot as tracked by the manager.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum HoneypotStatus {
    /// Not launched yet.
    Pending,
    /// Connected to its server with this client ID.
    Connected { client_id: ClientId },
    /// Launched but the server connection failed or was lost.
    Disconnected,
    /// The process died; the manager should relaunch it.
    Dead,
}

impl HoneypotStatus {
    /// Whether the manager's periodic status check should (re)launch it.
    pub fn needs_relaunch(&self) -> bool {
        matches!(
            self,
            HoneypotStatus::Pending | HoneypotStatus::Dead | HoneypotStatus::Disconnected
        )
    }
}

/// A status report a honeypot sends its manager after a launch attempt or a
/// periodic check (paper §III-A: "reports its status (connected or not), as
/// well as its clientID").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StatusReport {
    pub honeypot: HoneypotId,
    pub at: SimTime,
    pub status: HoneypotStatus,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_status_follows_client_id() {
        assert_eq!(IdStatus::of(ClientId::high_from_ip(Ipv4::new(82, 66, 1, 2))), IdStatus::High);
        assert_eq!(IdStatus::of(ClientId::low(99)), IdStatus::Low);
    }

    #[test]
    fn relaunch_policy() {
        assert!(HoneypotStatus::Pending.needs_relaunch());
        assert!(HoneypotStatus::Dead.needs_relaunch());
        assert!(HoneypotStatus::Disconnected.needs_relaunch());
        assert!(!HoneypotStatus::Connected { client_id: ClientId(LOW) }.needs_relaunch());
        const LOW: u32 = 5;
    }

    #[test]
    fn honeypot_id_display() {
        assert_eq!(HoneypotId(3).to_string(), "hp03");
        assert_eq!(HoneypotId(17).to_string(), "hp17");
    }
}
