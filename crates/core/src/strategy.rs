//! Honeypot behaviour strategies.
//!
//! Two orthogonal choices define a honeypot's behaviour (paper §III-B and
//! §IV):
//!
//! * the **content strategy** — what to do when a peer requests file parts:
//!   stay silent ([`ContentStrategy::NoContent`]) or send random bytes
//!   ([`ContentStrategy::RandomContent`]).  Sending the true file is
//!   rejected by the paper for bandwidth, storage, legal and ethical
//!   reasons;
//! * the **file strategy** — which files to advertise: a fixed list chosen
//!   by the manager ([`FileStrategy::Fixed`]), or the *greedy* procedure
//!   that starts from a few seeds and adopts every file seen in contacting
//!   peers' shared lists during an initial adoption window
//!   ([`FileStrategy::Greedy`]).

use edonkey_proto::FileId;
use netsim::SimTime;
use serde::{Deserialize, Serialize};

/// How the honeypot answers REQUEST-PART queries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ContentStrategy {
    /// Ignore part requests entirely; the peer is clocked by its own
    /// timeout and detects the dead source quickly.
    NoContent,
    /// Answer with random bytes; the peer only detects the fake when a full
    /// 9.28 MB part fails its hash check — slower and less certain.
    RandomContent,
}

impl ContentStrategy {
    /// Paper-style label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ContentStrategy::NoContent => "no content",
            ContentStrategy::RandomContent => "random content",
        }
    }
}

/// One file a honeypot advertises.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AdvertisedFile {
    pub id: FileId,
    pub name: String,
    pub size: u64,
}

impl AdvertisedFile {
    pub fn new(id: FileId, name: impl Into<String>, size: u64) -> Self {
        AdvertisedFile { id, name: name.into(), size }
    }
}

/// Which files the honeypot advertises.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FileStrategy {
    /// The manager supplies the exact list (the paper's *distributed*
    /// measurement: the same four files on all 24 honeypots).
    Fixed(Vec<AdvertisedFile>),
    /// Start with `seeds`; until `adopt_until`, every file appearing in a
    /// contacting peer's shared list is added to the advertised list (the
    /// paper's *greedy* measurement: one day of adoption, then freeze).
    Greedy {
        seeds: Vec<AdvertisedFile>,
        adopt_until: SimTime,
        /// Safety cap on the advertised list size.
        max_files: usize,
    },
}

impl FileStrategy {
    /// The initial advertisement at launch time.
    pub fn initial_files(&self) -> &[AdvertisedFile] {
        match self {
            FileStrategy::Fixed(files) => files,
            FileStrategy::Greedy { seeds, .. } => seeds,
        }
    }

    /// Whether new files from peer shared lists should be adopted at `now`.
    pub fn adopting(&self, now: SimTime) -> bool {
        match self {
            FileStrategy::Fixed(_) => false,
            FileStrategy::Greedy { adopt_until, .. } => now < *adopt_until,
        }
    }

    /// The advertised-list size cap.
    pub fn max_files(&self) -> usize {
        match self {
            FileStrategy::Fixed(files) => files.len(),
            FileStrategy::Greedy { max_files, .. } => *max_files,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(tag: &[u8]) -> AdvertisedFile {
        AdvertisedFile::new(FileId::from_seed(tag), "f", 100)
    }

    #[test]
    fn fixed_never_adopts() {
        let s = FileStrategy::Fixed(vec![file(b"a")]);
        assert!(!s.adopting(SimTime::ZERO));
        assert_eq!(s.initial_files().len(), 1);
        assert_eq!(s.max_files(), 1);
    }

    #[test]
    fn greedy_adopts_only_during_window() {
        let s = FileStrategy::Greedy {
            seeds: vec![file(b"a"), file(b"b")],
            adopt_until: SimTime::from_days(1),
            max_files: 10_000,
        };
        assert!(s.adopting(SimTime::from_hours(12)));
        assert!(!s.adopting(SimTime::from_days(1)), "window is half-open");
        assert!(!s.adopting(SimTime::from_days(2)));
        assert_eq!(s.initial_files().len(), 2);
        assert_eq!(s.max_files(), 10_000);
    }

    #[test]
    fn labels() {
        assert_eq!(ContentStrategy::NoContent.label(), "no content");
        assert_eq!(ContentStrategy::RandomContent.label(), "random content");
    }
}
