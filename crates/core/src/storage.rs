//! On-disk persistence of merged measurement logs.
//!
//! The paper's manager "merges and unifies the collected log files"; a
//! month-scale measurement is worth keeping.  [`save`]/[`load`] implement a
//! compact, versioned little-endian binary format (a full-scale distributed
//! log of ~10⁷ records serialises in seconds and reloads for re-analysis
//! without re-running the measurement).
//!
//! The format is strict: a magic header, a version, and length-prefixed
//! sections.  Loading validates lengths and indices, so truncated or
//! corrupted files fail cleanly instead of producing quietly wrong
//! datasets.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use edonkey_proto::{FileId, Ipv4, UserId};
use netsim::SimTime;

use crate::anonymize::AnonPeerId;
use crate::log::{FileTable, QueryKind};
use crate::measurement::{AnonRecord, AnonSharedList, HoneypotMeta, MeasurementLog};
use crate::strategy::ContentStrategy;
use crate::types::{HoneypotId, IdStatus, ServerInfo};

/// File magic: "EDHP".
const MAGIC: [u8; 4] = *b"EDHP";
/// Current format version.  Public because run-cache keys incorporate it:
/// bumping the format must invalidate every cached entry.
pub const VERSION: u32 = 1;

/// Errors of the storage layer.
#[derive(Debug)]
pub enum StorageError {
    Io(io::Error),
    /// Not an EDHP file.
    BadMagic,
    /// Format version not understood.
    UnsupportedVersion(u32),
    /// Structurally invalid content.
    Corrupt(&'static str),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(fm, "io error: {e}"),
            StorageError::BadMagic => write!(fm, "not an EDHP measurement file"),
            StorageError::UnsupportedVersion(v) => write!(fm, "unsupported format version {v}"),
            StorageError::Corrupt(what) => write!(fm, "corrupt measurement file: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

struct Out<W: Write> {
    w: W,
}

impl<W: Write> Out<W> {
    fn u8(&mut self, v: u8) -> io::Result<()> {
        self.w.write_all(&[v])
    }
    fn u16(&mut self, v: u16) -> io::Result<()> {
        self.w.write_all(&v.to_le_bytes())
    }
    fn u32(&mut self, v: u32) -> io::Result<()> {
        self.w.write_all(&v.to_le_bytes())
    }
    fn u64(&mut self, v: u64) -> io::Result<()> {
        self.w.write_all(&v.to_le_bytes())
    }
    fn bytes(&mut self, v: &[u8]) -> io::Result<()> {
        self.w.write_all(v)
    }
    fn string(&mut self, s: &str) -> io::Result<()> {
        self.u32(s.len() as u32)?;
        self.bytes(s.as_bytes())
    }
}

struct In<R: Read> {
    r: R,
}

impl<R: Read> In<R> {
    fn u8(&mut self) -> Result<u8, StorageError> {
        let mut b = [0u8; 1];
        self.r.read_exact(&mut b)?;
        Ok(b[0])
    }
    fn u16(&mut self) -> Result<u16, StorageError> {
        let mut b = [0u8; 2];
        self.r.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }
    fn u32(&mut self) -> Result<u32, StorageError> {
        let mut b = [0u8; 4];
        self.r.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, StorageError> {
        let mut b = [0u8; 8];
        self.r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn hash(&mut self) -> Result<[u8; 16], StorageError> {
        let mut b = [0u8; 16];
        self.r.read_exact(&mut b)?;
        Ok(b)
    }
    fn string(&mut self, limit: usize) -> Result<String, StorageError> {
        let len = self.u32()? as usize;
        if len > limit {
            return Err(StorageError::Corrupt("string length exceeds limit"));
        }
        let mut buf = vec![0u8; len];
        self.r.read_exact(&mut buf)?;
        String::from_utf8(buf).map_err(|_| StorageError::Corrupt("invalid UTF-8"))
    }
}

fn kind_to_u8(k: QueryKind) -> u8 {
    match k {
        QueryKind::Hello => 0,
        QueryKind::StartUpload => 1,
        QueryKind::RequestPart => 2,
    }
}

fn kind_from_u8(v: u8) -> Result<QueryKind, StorageError> {
    Ok(match v {
        0 => QueryKind::Hello,
        1 => QueryKind::StartUpload,
        2 => QueryKind::RequestPart,
        _ => return Err(StorageError::Corrupt("unknown query kind")),
    })
}

/// Serialises a measurement log to `path`.
pub fn save(log: &MeasurementLog, path: &Path) -> Result<(), StorageError> {
    let file = std::fs::File::create(path)?;
    let mut out = Out { w: BufWriter::new(file) };
    out.bytes(&MAGIC)?;
    out.u32(VERSION)?;

    out.u32(log.honeypots.len() as u32)?;
    for h in &log.honeypots {
        out.u32(h.id.0)?;
        out.u8(match h.content {
            ContentStrategy::NoContent => 0,
            ContentStrategy::RandomContent => 1,
        })?;
        out.string(&h.server.name)?;
        out.u32(h.server.ip.0)?;
        out.u16(h.server.port)?;
    }

    out.u32(log.peer_names.len() as u32)?;
    for n in &log.peer_names {
        out.string(n)?;
    }

    out.u32(log.files.len() as u32)?;
    for i in 0..log.files.len() as u32 {
        out.bytes(&log.files.id(i).0)?;
        out.string(log.files.name(i))?;
        out.u64(log.files.size(i))?;
    }

    out.u64(log.records.len() as u64)?;
    for r in &log.records {
        out.u64(r.at.as_millis())?;
        out.u32(r.honeypot.0)?;
        out.u8(kind_to_u8(r.kind))?;
        out.u32(r.peer.0)?;
        out.u16(r.port)?;
        out.u8(match r.id_status {
            IdStatus::High => 1,
            IdStatus::Low => 0,
        })?;
        out.bytes(&r.user_id.0)?;
        out.u32(r.name)?;
        out.u32(r.version)?;
        out.u32(r.file)?;
    }

    out.u64(log.shared_lists.len() as u64)?;
    for l in &log.shared_lists {
        out.u64(l.at.as_millis())?;
        out.u32(l.honeypot.0)?;
        out.u32(l.peer.0)?;
        out.u32(l.files.len() as u32)?;
        for &f in &l.files {
            out.u32(f)?;
        }
    }

    out.u32(log.distinct_peers)?;
    out.u64(log.duration.as_millis())?;
    out.u32(log.shared_files_final)?;
    out.w.flush()?;
    Ok(())
}

/// Deserialises a measurement log from `path` and validates it.
pub fn load(path: &Path) -> Result<MeasurementLog, StorageError> {
    let file = std::fs::File::open(path)?;
    let mut inp = In { r: BufReader::new(file) };
    let mut magic = [0u8; 4];
    inp.r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let version = inp.u32()?;
    if version != VERSION {
        return Err(StorageError::UnsupportedVersion(version));
    }

    let n_hp = inp.u32()? as usize;
    if n_hp > 10_000 {
        return Err(StorageError::Corrupt("implausible honeypot count"));
    }
    let mut honeypots = Vec::with_capacity(n_hp);
    for _ in 0..n_hp {
        let id = HoneypotId(inp.u32()?);
        let content = match inp.u8()? {
            0 => ContentStrategy::NoContent,
            1 => ContentStrategy::RandomContent,
            _ => return Err(StorageError::Corrupt("unknown content strategy")),
        };
        let name = inp.string(1 << 16)?;
        let ip = Ipv4(inp.u32()?);
        let port = inp.u16()?;
        honeypots.push(HoneypotMeta { id, content, server: ServerInfo::new(name, ip, port) });
    }

    let n_names = inp.u32()? as usize;
    let mut peer_names = Vec::with_capacity(n_names.min(1 << 20));
    for _ in 0..n_names {
        peer_names.push(inp.string(1 << 16)?);
    }

    let n_files = inp.u32()? as usize;
    let mut files = FileTable::new();
    for _ in 0..n_files {
        let id = FileId(inp.hash()?);
        let name = inp.string(1 << 16)?;
        let size = inp.u64()?;
        files.intern(id, &name, size);
    }
    if files.len() != n_files {
        return Err(StorageError::Corrupt("duplicate file ids"));
    }

    let n_records = inp.u64()? as usize;
    let mut records = Vec::with_capacity(n_records.min(1 << 24));
    for _ in 0..n_records {
        records.push(AnonRecord {
            at: SimTime::from_millis(inp.u64()?),
            honeypot: HoneypotId(inp.u32()?),
            kind: kind_from_u8(inp.u8()?)?,
            peer: AnonPeerId(inp.u32()?),
            port: inp.u16()?,
            id_status: if inp.u8()? == 1 { IdStatus::High } else { IdStatus::Low },
            user_id: UserId(inp.hash()?),
            name: inp.u32()?,
            version: inp.u32()?,
            file: inp.u32()?,
        });
    }

    let n_lists = inp.u64()? as usize;
    let mut shared_lists = Vec::with_capacity(n_lists.min(1 << 24));
    for _ in 0..n_lists {
        let at = SimTime::from_millis(inp.u64()?);
        let honeypot = HoneypotId(inp.u32()?);
        let peer = AnonPeerId(inp.u32()?);
        let n = inp.u32()? as usize;
        if n > n_files {
            return Err(StorageError::Corrupt("shared list longer than file table"));
        }
        let mut list = Vec::with_capacity(n);
        for _ in 0..n {
            list.push(inp.u32()?);
        }
        shared_lists.push(AnonSharedList { at, honeypot, peer, files: list });
    }

    let log = MeasurementLog {
        honeypots,
        records,
        shared_lists,
        peer_names,
        files,
        distinct_peers: inp.u32()?,
        duration: SimTime::from_millis(inp.u64()?),
        shared_files_final: inp.u32()?,
    };
    let problems = log.validate();
    if !problems.is_empty() {
        return Err(StorageError::Corrupt("indices out of range after load"));
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::FILE_NONE;

    fn sample_log() -> MeasurementLog {
        let mut files = FileTable::new();
        let f0 = files.intern(FileId::from_seed(b"a"), "file a.avi", 700 << 20);
        MeasurementLog {
            honeypots: vec![HoneypotMeta {
                id: HoneypotId(0),
                content: ContentStrategy::RandomContent,
                server: ServerInfo::new("srv", Ipv4::new(1, 2, 3, 4), 4661),
            }],
            records: vec![
                AnonRecord {
                    at: SimTime::from_secs(5),
                    honeypot: HoneypotId(0),
                    kind: QueryKind::Hello,
                    peer: AnonPeerId(0),
                    port: 4662,
                    id_status: IdStatus::High,
                    user_id: UserId::from_seed(b"u"),
                    name: 0,
                    version: 0x49,
                    file: FILE_NONE,
                },
                AnonRecord {
                    at: SimTime::from_secs(9),
                    honeypot: HoneypotId(0),
                    kind: QueryKind::StartUpload,
                    peer: AnonPeerId(1),
                    port: 4663,
                    id_status: IdStatus::Low,
                    user_id: UserId::from_seed(b"v"),
                    name: 0,
                    version: 0x3c,
                    file: f0,
                },
            ],
            shared_lists: vec![AnonSharedList {
                at: SimTime::from_secs(7),
                honeypot: HoneypotId(0),
                peer: AnonPeerId(0),
                files: vec![f0],
            }],
            peer_names: vec!["eMule".into()],
            files,
            distinct_peers: 2,
            duration: SimTime::from_days(1),
            shared_files_final: 1,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("edhp-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_preserves_everything() {
        let log = sample_log();
        let path = tmp("roundtrip.edhp");
        save(&log, &path).unwrap();
        let back = load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(back.records.len(), log.records.len());
        for (a, b) in back.records.iter().zip(&log.records) {
            assert_eq!(a, b);
        }
        assert_eq!(back.shared_lists, log.shared_lists);
        assert_eq!(back.peer_names, log.peer_names);
        assert_eq!(back.distinct_peers, log.distinct_peers);
        assert_eq!(back.duration, log.duration);
        assert_eq!(back.shared_files_final, log.shared_files_final);
        assert_eq!(back.files.len(), log.files.len());
        assert_eq!(back.files.name(0), log.files.name(0));
        assert_eq!(back.files.total_size(), log.files.total_size());
        assert_eq!(back.honeypots.len(), 1);
        assert_eq!(back.honeypots[0].content, ContentStrategy::RandomContent);
        assert_eq!(back.honeypots[0].server.name, "srv");
        // The loaded file table's index works.
        assert_eq!(back.files.lookup(&FileId::from_seed(b"a")), Some(0));
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("magic.edhp");
        std::fs::write(&path, b"NOPE....").unwrap();
        assert!(matches!(load(&path), Err(StorageError::BadMagic)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_rejected() {
        let path = tmp("version.edhp");
        let mut data = Vec::new();
        data.extend_from_slice(&MAGIC);
        data.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, data).unwrap();
        assert!(matches!(load(&path), Err(StorageError::UnsupportedVersion(99))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_detected() {
        let log = sample_log();
        let path = tmp("trunc.edhp");
        save(&log, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        for cut in [8, 20, data.len() / 2, data.len() - 1] {
            std::fs::write(&path, &data[..cut]).unwrap();
            assert!(load(&path).is_err(), "cut at {cut} must fail");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_indices_detected() {
        let log = sample_log();
        let path = tmp("corrupt.edhp");
        save(&log, &path).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        // Flip the distinct_peers trailer (last 16 bytes: u32 + u64 + u32 →
        // distinct_peers is at len-16..len-12).
        let n = data.len();
        data[n - 16..n - 12].copy_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        assert!(
            matches!(load(&path), Err(StorageError::Corrupt(_))),
            "peer ids now exceed distinct_peers"
        );
        std::fs::remove_file(&path).ok();
    }
}
