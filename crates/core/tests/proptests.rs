//! Property-based tests of the measurement platform: anonymisation
//! coherence, log interning, manager merging.

use proptest::prelude::*;

use edonkey_proto::{FileId, Ipv4, UserId};
use honeypot::anonymize::{AnonMap, IpHasher, NameAnonymizer};
use honeypot::log::{HoneypotLog, QueryKind, QueryRecord, FILE_NONE};
use honeypot::types::IdStatus;
use honeypot::{HoneypotId, HoneypotSpec, Manager, ServerInfo};
use netsim::SimTime;

fn server() -> ServerInfo {
    ServerInfo::new("s", Ipv4::new(9, 9, 9, 9), 4661)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ip_hashing_is_injective_on_samples(ips in prop::collection::hash_set(any::<u32>(), 2..200)) {
        let hasher = IpHasher::from_seed(1);
        let hashes: std::collections::HashSet<_> =
            ips.iter().map(|&ip| hasher.hash(Ipv4(ip))).collect();
        prop_assert_eq!(hashes.len(), ips.len(), "distinct IPs must hash distinctly");
    }

    #[test]
    fn anon_map_is_a_bijection_onto_a_prefix(ips in prop::collection::vec(any::<u32>(), 0..300)) {
        let hasher = IpHasher::from_seed(2);
        let mut map = AnonMap::new();
        let mut by_ip = std::collections::HashMap::new();
        for &ip in &ips {
            let id = map.intern(hasher.hash(Ipv4(ip)));
            // Same IP always yields the same ID.
            if let Some(prev) = by_ip.insert(ip, id) {
                prop_assert_eq!(prev, id);
            }
        }
        let distinct: std::collections::HashSet<_> = by_ip.values().collect();
        prop_assert_eq!(distinct.len(), by_ip.len(), "distinct IPs get distinct IDs");
        prop_assert_eq!(map.len(), by_ip.len());
        // IDs form the dense prefix 0..n.
        let mut ids: Vec<u32> = by_ip.values().map(|a| a.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids, (0..map.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn name_anonymiser_never_leaks_rare_words(
        rare in "[a-z]{4,12}",
        common in "[a-z]{4,12}",
        reps in 5u32..20,
    ) {
        prop_assume!(rare != common);
        let mut counter = NameAnonymizer::new();
        for _ in 0..reps {
            counter.count(&common);
        }
        counter.count(&format!("{rare} {common}"));
        let frozen = counter.freeze(3);
        let out = frozen.anonymize(&format!("{rare}.{common}.{rare}"));
        prop_assert!(!out.contains(&rare), "rare word leaked: {out}");
        prop_assert!(out.contains(&common), "common word lost: {out}");
    }

    #[test]
    fn anonymised_output_is_deterministic(names in prop::collection::vec("[a-z ]{1,20}", 1..30)) {
        let build = || {
            let mut counter = NameAnonymizer::new();
            for n in &names {
                counter.count(n);
            }
            counter.freeze(2)
        };
        let a = build();
        let b = build();
        for n in &names {
            prop_assert_eq!(a.anonymize(n), b.anonymize(n));
        }
    }

    #[test]
    fn manager_merge_preserves_record_counts_and_coherence(
        peers_a in prop::collection::vec(any::<u32>(), 1..60),
        peers_b in prop::collection::vec(any::<u32>(), 1..60),
    ) {
        let hasher = IpHasher::from_seed(3);
        let make_chunk = |hp: u32, ips: &[u32]| {
            let mut log = HoneypotLog::new(HoneypotId(hp), server());
            let name = log.intern_name("client");
            let file = log.files.intern(FileId::from_seed(b"f"), "f", 1);
            for (i, &ip) in ips.iter().enumerate() {
                log.push(QueryRecord {
                    at: SimTime::from_secs(i as u64),
                    kind: if i % 2 == 0 { QueryKind::Hello } else { QueryKind::StartUpload },
                    peer: hasher.hash(Ipv4(ip)),
                    port: 4662,
                    id_status: IdStatus::High,
                    user_id: UserId::from_seed(&ip.to_le_bytes()),
                    name,
                    version: 1,
                    file: if i % 2 == 0 { FILE_NONE } else { file },
                });
            }
            log.take_chunk()
        };
        let specs = vec![
            HoneypotSpec { id: HoneypotId(0), content: honeypot::ContentStrategy::NoContent, server: server() },
            HoneypotSpec { id: HoneypotId(1), content: honeypot::ContentStrategy::RandomContent, server: server() },
        ];
        let mut mgr = Manager::new(specs);
        mgr.collect(make_chunk(0, &peers_a));
        mgr.collect(make_chunk(1, &peers_b));
        let merged = mgr.finalize(SimTime::from_days(1), 1, 2);

        prop_assert_eq!(merged.records.len(), peers_a.len() + peers_b.len());
        prop_assert!(merged.validate().is_empty(), "{:?}", merged.validate());

        // Coherence: an IP appearing in both honeypots' logs maps to one ID.
        let expect_distinct: std::collections::HashSet<u32> =
            peers_a.iter().chain(&peers_b).copied().collect();
        prop_assert_eq!(merged.distinct_peers as usize, expect_distinct.len());

        // Per-record check: same source IP ⇒ same anon id across honeypots.
        let mut id_of_ip = std::collections::HashMap::new();
        for (r, &ip) in merged.records.iter().zip(peers_a.iter().chain(&peers_b)) {
            if let Some(prev) = id_of_ip.insert(ip, r.peer) {
                prop_assert_eq!(prev, r.peer, "IP {} mapped to two ids", ip);
            }
        }
    }

    #[test]
    fn file_table_interning_is_idempotent(entries in prop::collection::vec((any::<[u8;16]>(), "[a-z]{1,8}", any::<u32>()), 0..100)) {
        let mut table = honeypot::log::FileTable::new();
        let mut expect: std::collections::HashMap<[u8;16], u32> = std::collections::HashMap::new();
        for (id, name, size) in &entries {
            let idx = table.intern(FileId(*id), name, u64::from(*size));
            match expect.entry(*id) {
                std::collections::hash_map::Entry::Vacant(e) => { e.insert(idx); }
                std::collections::hash_map::Entry::Occupied(e) => {
                    prop_assert_eq!(*e.get(), idx, "re-interning must return the same index");
                }
            }
        }
        prop_assert_eq!(table.len(), expect.len());
    }
}
