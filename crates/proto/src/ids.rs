//! Identifiers used throughout the eDonkey network.
//!
//! * [`FileId`] — the 16-byte MD4-derived *file hash* ("fileID"): generated
//!   from the file's content so that identically-named but different files
//!   are distinguished, and identical content under different names is
//!   unified (paper, footnote 3).
//! * [`UserId`] — the 16-byte *user hash*, stable across sessions and used to
//!   recognise a client independently of its network location (footnote 4).
//! * [`ClientId`] — the server-assigned session identifier: the peer's IPv4
//!   address when it is directly reachable (*high ID*) or a 24-bit number
//!   otherwise (*low ID*) (footnote 2).
//! * [`PeerAddr`] — IPv4 + TCP port of a peer, as carried in `FOUND-SOURCES`.

use serde::{Deserialize, Serialize};

use crate::md4::{md4, to_hex};

/// Threshold separating low IDs from high IDs: IDs below `2^24` are
/// server-local ("low"), IDs at or above are the peer's IPv4 address encoded
/// as a little-endian u32 ("high").
pub const LOW_ID_LIMIT: u32 = 1 << 24;

/// The 16-byte eDonkey file hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub [u8; 16]);

impl FileId {
    /// Derives a file ID from arbitrary seed material (used by the synthetic
    /// catalog; real files use [`crate::parts::hash_file_parts`]).
    pub fn from_seed(seed: &[u8]) -> Self {
        FileId(md4(seed))
    }

    /// Lowercase-hex rendering (the usual `ed2k://` display form).
    pub fn to_hex(&self) -> String {
        to_hex(&self.0)
    }

    /// Parses the 32-character lowercase/uppercase hex form.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(s.get(2 * i..2 * i + 2)?, 16).ok()?;
        }
        Some(FileId(out))
    }
}

impl std::fmt::Debug for FileId {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fm, "FileId({})", self.to_hex())
    }
}

impl std::fmt::Display for FileId {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.write_str(&self.to_hex())
    }
}

/// The 16-byte eDonkey user hash, stable across sessions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub [u8; 16]);

impl UserId {
    /// Derives a user hash from arbitrary seed material.
    pub fn from_seed(seed: &[u8]) -> Self {
        UserId(md4(seed))
    }

    /// Lowercase-hex rendering.
    pub fn to_hex(&self) -> String {
        to_hex(&self.0)
    }
}

impl std::fmt::Debug for UserId {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fm, "UserId({})", self.to_hex())
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.write_str(&self.to_hex())
    }
}

/// Server-assigned session identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl ClientId {
    /// A high ID encodes the peer's IPv4 address (little-endian byte order,
    /// as on the wire).
    pub fn high_from_ip(ip: Ipv4) -> Self {
        ClientId(u32::from_le_bytes(ip.octets()))
    }

    /// A low ID is a server-local 24-bit number (`1 ..= 2^24 - 1`).
    ///
    /// # Panics
    /// If `n` is zero or does not fit in 24 bits.
    pub fn low(n: u32) -> Self {
        assert!(n > 0 && n < LOW_ID_LIMIT, "low ID out of range: {n}");
        ClientId(n)
    }

    /// Whether the peer is directly reachable.
    pub fn is_high(&self) -> bool {
        self.0 >= LOW_ID_LIMIT
    }

    /// Whether the peer sits behind NAT/firewall and got a 24-bit ID.
    pub fn is_low(&self) -> bool {
        !self.is_high()
    }

    /// Recovers the IPv4 address from a high ID.
    pub fn ip(&self) -> Option<Ipv4> {
        self.is_high().then(|| Ipv4::from_octets(self.0.to_le_bytes()))
    }
}

impl std::fmt::Debug for ClientId {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(ip) = self.ip() {
            write!(fm, "ClientId(high {ip})")
        } else {
            write!(fm, "ClientId(low {})", self.0)
        }
    }
}

/// An IPv4 address (we keep our own 4-byte newtype rather than
/// `std::net::Ipv4Addr` so that the simulated world and the wire codec share
/// one plain-old-data representation that is `serde`-friendly and orderable).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Builds an address from dotted-quad octets.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    /// Builds an address from big-endian octets.
    pub fn from_octets(o: [u8; 4]) -> Self {
        Ipv4(u32::from_be_bytes(o))
    }

    /// Big-endian octets (network order).
    pub fn octets(&self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl std::fmt::Debug for Ipv4 {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fm, "{self}")
    }
}

impl std::fmt::Display for Ipv4 {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(fm, "{a}.{b}.{c}.{d}")
    }
}

impl From<std::net::Ipv4Addr> for Ipv4 {
    fn from(a: std::net::Ipv4Addr) -> Self {
        Ipv4::from_octets(a.octets())
    }
}

impl From<Ipv4> for std::net::Ipv4Addr {
    fn from(a: Ipv4) -> Self {
        std::net::Ipv4Addr::from(a.octets())
    }
}

/// A peer's network endpoint as carried in `FOUND-SOURCES` answers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct PeerAddr {
    pub ip: Ipv4,
    pub port: u16,
}

impl PeerAddr {
    pub fn new(ip: Ipv4, port: u16) -> Self {
        PeerAddr { ip, port }
    }
}

impl std::fmt::Display for PeerAddr {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fm, "{}:{}", self.ip, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_id_round_trips_ip() {
        let ip = Ipv4::new(134, 157, 0, 42);
        let id = ClientId::high_from_ip(ip);
        assert!(id.is_high());
        assert_eq!(id.ip(), Some(ip));
    }

    #[test]
    fn low_id_has_no_ip() {
        let id = ClientId::low(123_456);
        assert!(id.is_low());
        assert_eq!(id.ip(), None);
    }

    #[test]
    #[should_panic(expected = "low ID out of range")]
    fn low_id_rejects_out_of_range() {
        let _ = ClientId::low(LOW_ID_LIMIT);
    }

    #[test]
    fn small_ips_would_be_low_ids_by_construction() {
        // An IP like 1.0.0.0 encodes (LE) to 1, inside the low range: the
        // real network avoids assigning such addresses as high IDs; we only
        // check the arithmetic is what the spec says (little-endian).
        let id = ClientId::high_from_ip(Ipv4::new(1, 2, 3, 4));
        assert_eq!(id.0, u32::from_le_bytes([1, 2, 3, 4]));
    }

    #[test]
    fn file_id_hex_round_trip() {
        let id = FileId::from_seed(b"some file");
        assert_eq!(FileId::from_hex(&id.to_hex()), Some(id));
        assert_eq!(FileId::from_hex("xyz"), None);
        assert_eq!(FileId::from_hex(&"0".repeat(31)), None);
    }

    #[test]
    fn ipv4_display_and_conversion() {
        let ip = Ipv4::new(192, 168, 1, 2);
        assert_eq!(ip.to_string(), "192.168.1.2");
        let std_ip: std::net::Ipv4Addr = ip.into();
        assert_eq!(Ipv4::from(std_ip), ip);
    }

    #[test]
    fn peer_addr_display() {
        let a = PeerAddr::new(Ipv4::new(10, 0, 0, 1), 4662);
        assert_eq!(a.to_string(), "10.0.0.1:4662");
    }
}
