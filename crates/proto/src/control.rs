//! The honeypot **control-plane** codec: versioned, length-prefixed,
//! checksummed frames spoken between the measurement manager daemon and its
//! honeypot agents (paper §III-A — launch, monitor, relaunch, collect).
//!
//! This is deliberately *not* the eDonkey wire format: control traffic is
//! an internal protocol of the measurement platform, so it gets its own
//! marker byte, an explicit protocol version (agents and manager from
//! different builds must refuse to talk rather than misparse), and a CRC-32
//! over the payload so a corrupted log-chunk upload is detected at the
//! framing layer and re-requested instead of silently merged.
//!
//! Frame layout (integers little-endian):
//!
//! ```text
//! u8   marker   (0xEC)
//! u8   version  (CONTROL_VERSION)
//! u8   opcode
//! u32  length   (payload bytes)
//! [u8] payload
//! u32  crc32    (IEEE, over the payload only)
//! ```
//!
//! [`ControlDecoder`] is incremental like [`crate::codec::FrameDecoder`],
//! but distinguishes three outcomes per frame: a good frame, a frame whose
//! payload failed its checksum (the stream is still in sync — framing was
//! intact — so the receiver can ask for a retransmit), and fatal framing
//! errors (bad marker/version, oversized length) after which the
//! connection must be dropped.

use crate::error::ProtoError;

/// Marker byte of control frames (distinct from the eDonkey 0xE3/0xC5/0xD4
/// family).
pub const CONTROL_MAGIC: u8 = 0xEC;

/// Control-protocol version; bumped on any incompatible change.
///
/// * v1 — stop-and-wait chunk upload: one `LOG_CHUNK` in flight, every
///   chunk individually acknowledged.
/// * v2 — windowed, pipelined upload: `REGISTER_ACK` grants an upload
///   window, `CHUNK_ACK` carries the *cumulative* frontier (`next_seq`:
///   everything below it is merged and durable; the agent trims its spool
///   up to `next_seq - 1`).
pub const CONTROL_VERSION: u8 = 2;

/// Hard cap on a control payload (a log chunk of a month-scale collection
/// interval stays far below this).
pub const MAX_CONTROL_PAYLOAD: u32 = 64 << 20;

/// Control opcodes.
pub mod opcodes {
    /// Agent → manager: first frame after connect; carries the agent id.
    pub const REGISTER: u8 = 0x01;
    /// Manager → agent: registration accepted; carries the next expected
    /// upload sequence number (resume-after-reconnect) and the granted
    /// upload window (max chunks in flight).
    pub const REGISTER_ACK: u8 = 0x02;
    /// Manager → agent: full honeypot configuration (advertise list +
    /// content strategy + server assignment + intervals).
    pub const CONFIG_PUSH: u8 = 0x03;
    /// Agent → manager: liveness beacon.
    pub const HEARTBEAT: u8 = 0x10;
    /// Manager → agent: heartbeat echo (lets the agent measure RTT).
    pub const HEARTBEAT_ACK: u8 = 0x11;
    /// Agent → manager: honeypot status change (connected / disconnected /
    /// dead).
    pub const STATUS_REPORT: u8 = 0x12;
    /// Agent → manager: the honeypot is up; carries the TCP port its peer
    /// listener bound (the manager's traffic drivers need it).
    pub const READY: u8 = 0x13;
    /// Agent → manager: one sequenced log chunk.
    pub const LOG_CHUNK: u8 = 0x20;
    /// Manager → agent: cumulative acknowledgement — every chunk below the
    /// carried `next_seq` is merged and durable; the agent may discard its
    /// copies up to that frontier.
    pub const CHUNK_ACK: u8 = 0x21;
    /// Manager → agent: the upload stream is damaged at the given sequence
    /// number (corrupt frame or a hole in the window); re-send everything
    /// from it (go-back-N).
    pub const CHUNK_RETRY: u8 = 0x22;
    /// Manager → agent: tear down and restart the honeypot.
    pub const RELAUNCH: u8 = 0x30;
    /// Manager → agent: flush logs and exit.
    pub const SHUTDOWN: u8 = 0x31;
    /// Agent → manager: final frame before a clean exit.
    pub const GOODBYE: u8 = 0x32;
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the classic
/// zlib polynomial, computed bitwise; control frames are far from the hot
/// path, so a lookup table would be wasted cache.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A framing-validated control frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ControlFrame {
    pub version: u8,
    pub opcode: u8,
    pub payload: Vec<u8>,
}

/// Encodes one control frame.
pub fn encode_control_frame(opcode: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(11 + payload.len());
    out.push(CONTROL_MAGIC);
    out.push(CONTROL_VERSION);
    out.push(opcode);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Per-frame decode outcome of the incremental decoder.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ControlEvent {
    /// A complete, checksum-verified frame.
    Frame(ControlFrame),
    /// A complete frame whose payload failed its CRC.  The stream is still
    /// framed correctly; the receiver should request a retransmit keyed on
    /// its own protocol state (the opcode is the header's claim and may
    /// itself be unreliable on a corrupted link).
    Corrupt { opcode: u8 },
}

/// Decodes exactly one control frame, returning the event and the bytes
/// consumed.  `Truncated` means "feed more bytes".
pub fn decode_control_frame(data: &[u8]) -> Result<(ControlEvent, usize), ProtoError> {
    decode_control_frame_capped(data, MAX_CONTROL_PAYLOAD)
}

/// [`decode_control_frame`] with a caller-chosen payload cap.  A receiving
/// endpoint may enforce a limit far below the protocol-wide
/// [`MAX_CONTROL_PAYLOAD`] (e.g. the daemon caps unregistered connections
/// so a hostile peer cannot commit it to a 64 MB read); the cap applies to
/// the header's *declared* length, so an oversized frame is rejected
/// before any of its payload is buffered for decode.
pub fn decode_control_frame_capped(
    data: &[u8],
    max_payload: u32,
) -> Result<(ControlEvent, usize), ProtoError> {
    if data.len() < 7 {
        return Err(ProtoError::Truncated("control frame header"));
    }
    if data[0] != CONTROL_MAGIC {
        return Err(ProtoError::BadProtocolByte(data[0]));
    }
    let version = data[1];
    if version != CONTROL_VERSION {
        return Err(ProtoError::Invalid("unsupported control protocol version"));
    }
    let opcode = data[2];
    let len = u32::from_le_bytes([data[3], data[4], data[5], data[6]]);
    let limit = max_payload.min(MAX_CONTROL_PAYLOAD);
    if len > limit {
        return Err(ProtoError::OversizedFrame { declared: len, limit });
    }
    let total = 7 + len as usize + 4;
    if data.len() < total {
        return Err(ProtoError::Truncated("control frame body"));
    }
    let payload = &data[7..7 + len as usize];
    let declared_crc =
        u32::from_le_bytes([data[total - 4], data[total - 3], data[total - 2], data[total - 1]]);
    if crc32(payload) != declared_crc {
        return Ok((ControlEvent::Corrupt { opcode }, total));
    }
    Ok((ControlEvent::Frame(ControlFrame { version, opcode, payload: payload.to_vec() }), total))
}

/// Incremental control-frame decoder for byte streams.
#[derive(Debug)]
pub struct ControlDecoder {
    buf: Vec<u8>,
    start: usize,
    max_payload: u32,
}

impl Default for ControlDecoder {
    fn default() -> Self {
        ControlDecoder { buf: Vec::new(), start: 0, max_payload: MAX_CONTROL_PAYLOAD }
    }
}

impl ControlDecoder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the payload size this decoder will accept (see
    /// [`decode_control_frame_capped`]).  Takes effect from the next
    /// [`Self::next_event`] call.
    pub fn set_max_payload(&mut self, max_payload: u32) {
        self.max_payload = max_payload.min(MAX_CONTROL_PAYLOAD);
    }

    /// Appends received bytes.
    pub fn feed(&mut self, data: &[u8]) {
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pulls the next event, `Ok(None)` if more bytes are needed.  A
    /// [`ControlEvent::Corrupt`] consumes its frame — the stream stays in
    /// sync.  `Err` is fatal for the connection.
    pub fn next_event(&mut self) -> Result<Option<ControlEvent>, ProtoError> {
        let pending = &self.buf[self.start..];
        match decode_control_frame_capped(pending, self.max_payload) {
            Ok((event, used)) => {
                self.start += used;
                Ok(Some(event))
            }
            Err(ProtoError::Truncated(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let bytes = encode_control_frame(opcodes::LOG_CHUNK, b"hello chunk");
        let (event, used) = decode_control_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        let ControlEvent::Frame(f) = event else { panic!("expected a good frame") };
        assert_eq!(f.opcode, opcodes::LOG_CHUNK);
        assert_eq!(f.version, CONTROL_VERSION);
        assert_eq!(f.payload, b"hello chunk");
    }

    #[test]
    fn corrupted_payload_is_flagged_but_consumed() {
        let mut bytes = encode_control_frame(opcodes::LOG_CHUNK, b"precious log data");
        bytes[9] ^= 0xFF; // flip a payload byte; header + CRC field intact
        let (event, used) = decode_control_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len(), "corrupt frame must be fully consumed");
        assert_eq!(event, ControlEvent::Corrupt { opcode: opcodes::LOG_CHUNK });
    }

    #[test]
    fn stream_survives_a_corrupt_frame() {
        let good = encode_control_frame(opcodes::HEARTBEAT, b"hb-1");
        let mut bad = encode_control_frame(opcodes::LOG_CHUNK, b"chunk data");
        let n = bad.len();
        bad[n - 5] ^= 0x55; // corrupt the last payload byte
        let tail = encode_control_frame(opcodes::HEARTBEAT, b"hb-2");

        let mut dec = ControlDecoder::new();
        dec.feed(&good);
        dec.feed(&bad);
        dec.feed(&tail);
        assert!(
            matches!(dec.next_event().unwrap(), Some(ControlEvent::Frame(f)) if f.payload == b"hb-1")
        );
        assert_eq!(
            dec.next_event().unwrap(),
            Some(ControlEvent::Corrupt { opcode: opcodes::LOG_CHUNK })
        );
        assert!(
            matches!(dec.next_event().unwrap(), Some(ControlEvent::Frame(f)) if f.payload == b"hb-2")
        );
        assert_eq!(dec.next_event().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn incremental_decoding_handles_arbitrary_chunking() {
        let frames = [
            encode_control_frame(opcodes::REGISTER, b"agent-0"),
            encode_control_frame(opcodes::LOG_CHUNK, &vec![0xAB; 1000]),
            encode_control_frame(opcodes::GOODBYE, b""),
        ];
        let stream: Vec<u8> = frames.iter().flatten().copied().collect();
        for chunk in [1usize, 3, 7, 64, 500] {
            let mut dec = ControlDecoder::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                dec.feed(piece);
                while let Some(ev) = dec.next_event().unwrap() {
                    let ControlEvent::Frame(f) = ev else { panic!("no corruption injected") };
                    got.push(f.opcode);
                }
            }
            assert_eq!(
                got,
                vec![opcodes::REGISTER, opcodes::LOG_CHUNK, opcodes::GOODBYE],
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_fatal() {
        let mut bytes = encode_control_frame(opcodes::HEARTBEAT, b"x");
        bytes[0] = 0xE3; // an eDonkey frame is not a control frame
        assert!(matches!(decode_control_frame(&bytes), Err(ProtoError::BadProtocolByte(0xE3))));
        let mut bytes = encode_control_frame(opcodes::HEARTBEAT, b"x");
        bytes[1] = CONTROL_VERSION + 1;
        assert!(matches!(decode_control_frame(&bytes), Err(ProtoError::Invalid(_))));
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut bytes = encode_control_frame(opcodes::LOG_CHUNK, b"x");
        bytes[3..7].copy_from_slice(&(MAX_CONTROL_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(decode_control_frame(&bytes), Err(ProtoError::OversizedFrame { .. })));
    }

    #[test]
    fn per_decoder_cap_tightens_the_protocol_limit() {
        // A frame comfortably under the protocol-wide cap…
        let bytes = encode_control_frame(opcodes::LOG_CHUNK, &vec![7u8; 2048]);
        assert!(decode_control_frame(&bytes).is_ok());
        // …is fatal on a decoder capped below it, from the declared length
        // alone (an attacker cannot make us buffer the body first).
        let mut dec = ControlDecoder::new();
        dec.set_max_payload(1024);
        dec.feed(&bytes[..16]);
        assert!(matches!(dec.next_event(), Err(ProtoError::OversizedFrame { limit: 1024, .. })));
        // The cap never loosens the protocol limit.
        assert!(matches!(
            decode_control_frame_capped(&bytes, u32::MAX),
            Ok((ControlEvent::Frame(_), _))
        ));
    }

    #[test]
    fn truncation_asks_for_more_bytes() {
        let bytes = encode_control_frame(opcodes::LOG_CHUNK, b"partial");
        let mut dec = ControlDecoder::new();
        dec.feed(&bytes[..bytes.len() - 1]);
        assert_eq!(dec.next_event().unwrap(), None, "incomplete frame: wait");
        dec.feed(&bytes[bytes.len() - 1..]);
        assert!(matches!(dec.next_event().unwrap(), Some(ControlEvent::Frame(_))));
    }
}
