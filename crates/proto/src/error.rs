//! Protocol decoding errors.

/// Errors raised while decoding eDonkey wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before a declared field was complete.
    Truncated(&'static str),
    /// A message decoded fine but left unexplained bytes behind.
    TrailingBytes(usize),
    /// Unknown framing protocol byte (expected 0xE3 / 0xC5).
    BadProtocolByte(u8),
    /// Opcode not understood in this direction.
    UnknownOpcode { opcode: u8, context: &'static str },
    /// Tag type byte outside the supported subset.
    UnknownTagType(u8),
    /// A declared length exceeds the hard sanity limit.
    OversizedFrame { declared: u32, limit: u32 },
    /// Semantically invalid field (e.g. zero part ranges).
    Invalid(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated(what) => write!(fm, "truncated payload: {what}"),
            ProtoError::TrailingBytes(n) => write!(fm, "{n} unexplained trailing bytes"),
            ProtoError::BadProtocolByte(b) => write!(fm, "bad protocol byte 0x{b:02x}"),
            ProtoError::UnknownOpcode { opcode, context } => {
                write!(fm, "unknown opcode 0x{opcode:02x} ({context})")
            }
            ProtoError::UnknownTagType(t) => write!(fm, "unknown tag type 0x{t:02x}"),
            ProtoError::OversizedFrame { declared, limit } => {
                write!(fm, "declared frame length {declared} exceeds limit {limit}")
            }
            ProtoError::Invalid(what) => write!(fm, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}
