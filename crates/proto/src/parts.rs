//! Part/block geometry and content hashing.
//!
//! eDonkey splits every file into *parts* of 9,728,000 bytes; transfers
//! request *blocks* of at most 180 KB within a part.  A file's identifier is
//! the MD4 of its single part's content when it fits in one part, and the
//! MD4 of the concatenated per-part MD4 digests otherwise.  A downloading
//! client can therefore verify each completed part independently — which is
//! exactly the mechanism by which genuine peers eventually detect a
//! *random-content* honeypot (the part completes but its hash does not
//! match), and why that detection is much slower than noticing a
//! *no-content* honeypot's silence (paper §IV-B).

use crate::ids::FileId;
use crate::md4::{md4, Md4};
use crate::messages::PartRange;

/// Size of one part: 9,728,000 bytes (9.28 MB).
pub const PART_SIZE: u64 = 9_728_000;

/// Maximum transfer block requested by REQUEST-PARTS: 180 KB.
pub const BLOCK_SIZE: u64 = 184_320;

/// Number of parts of a file of `size` bytes.
///
/// Mirrors the eMule quirk: a file whose size is an exact non-zero multiple
/// of [`PART_SIZE`] still gets a final zero-length part appended when
/// hashing (`hash_file_parts`), but geometrically has `size / PART_SIZE`
/// data parts.
pub fn part_count(size: u64) -> u64 {
    if size == 0 {
        1
    } else {
        size.div_ceil(PART_SIZE)
    }
}

/// Number of blocks needed to fetch a file of `size` bytes.
pub fn block_count(size: u64) -> u64 {
    if size == 0 {
        0
    } else {
        size.div_ceil(BLOCK_SIZE)
    }
}

/// The half-open byte range of part `index` in a file of `size` bytes.
pub fn part_range(size: u64, index: u64) -> Option<(u64, u64)> {
    if index >= part_count(size) {
        return None;
    }
    let start = index * PART_SIZE;
    Some((start, (start + PART_SIZE).min(size.max(start))))
}

/// Enumerates the block ranges (as u32 wire ranges) covering part `index` of
/// a file of `size` bytes, in transfer order.
pub fn blocks_of_part(size: u64, index: u64) -> Vec<PartRange> {
    let Some((start, end)) = part_range(size, index) else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(((end - start).div_ceil(BLOCK_SIZE)) as usize);
    let mut pos = start;
    while pos < end {
        let stop = (pos + BLOCK_SIZE).min(end);
        out.push(PartRange::new(pos as u32, stop as u32));
        pos = stop;
    }
    out
}

/// Hashes full file content into its eDonkey file ID.
///
/// Single-part files use the part hash directly; multi-part files hash the
/// concatenation of part hashes.  An exact multiple of [`PART_SIZE`] gets an
/// extra empty-part hash, matching eMule's historical behaviour.
pub fn hash_file_parts(content: &[u8]) -> FileId {
    if (content.len() as u64) < PART_SIZE {
        return FileId(md4(content));
    }
    let mut digests = Vec::new();
    for chunk in content.chunks(PART_SIZE as usize) {
        digests.extend_from_slice(&md4(chunk));
    }
    if (content.len() as u64).is_multiple_of(PART_SIZE) {
        digests.extend_from_slice(&md4(&[]));
    }
    FileId(md4(&digests))
}

/// Streaming variant of [`hash_file_parts`] for content that is produced
/// block-by-block (used by simulated peers to verify a part as it arrives).
#[derive(Debug, Clone)]
pub struct PartHasher {
    current: Md4,
    in_part: u64,
    digests: Vec<u8>,
    total: u64,
}

impl Default for PartHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl PartHasher {
    pub fn new() -> Self {
        PartHasher { current: Md4::new(), in_part: 0, digests: Vec::new(), total: 0 }
    }

    /// Absorbs the next bytes of the file, in order.
    pub fn update(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let room = (PART_SIZE - self.in_part) as usize;
            let take = room.min(data.len());
            self.current.update(&data[..take]);
            self.in_part += take as u64;
            self.total += take as u64;
            data = &data[take..];
            if self.in_part == PART_SIZE {
                let done = std::mem::take(&mut self.current);
                self.digests.extend_from_slice(&done.finalize());
                self.in_part = 0;
            }
        }
    }

    /// Completes the hash into the file ID.
    pub fn finalize(mut self) -> FileId {
        if self.total < PART_SIZE {
            return FileId(self.current.finalize());
        }
        // The trailing (possibly empty) part hash is always appended once
        // the file reached at least one full part.
        let done = std::mem::take(&mut self.current);
        self.digests.extend_from_slice(&done.finalize());
        FileId(md4(&self.digests))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part_counts() {
        assert_eq!(part_count(0), 1);
        assert_eq!(part_count(1), 1);
        assert_eq!(part_count(PART_SIZE - 1), 1);
        assert_eq!(part_count(PART_SIZE), 1);
        assert_eq!(part_count(PART_SIZE + 1), 2);
        assert_eq!(part_count(10 * PART_SIZE), 10);
    }

    #[test]
    fn block_counts() {
        assert_eq!(block_count(0), 0);
        assert_eq!(block_count(1), 1);
        assert_eq!(block_count(BLOCK_SIZE), 1);
        assert_eq!(block_count(BLOCK_SIZE + 1), 2);
    }

    #[test]
    fn part_ranges_partition_the_file() {
        let size = 2 * PART_SIZE + 12_345;
        let mut covered = 0;
        for i in 0..part_count(size) {
            let (s, e) = part_range(size, i).unwrap();
            assert_eq!(s, covered);
            covered = e;
        }
        assert_eq!(covered, size);
        assert_eq!(part_range(size, part_count(size)), None);
    }

    #[test]
    fn blocks_partition_each_part() {
        let size = PART_SIZE + 500_000;
        for i in 0..part_count(size) {
            let (s, e) = part_range(size, i).unwrap();
            let blocks = blocks_of_part(size, i);
            assert_eq!(blocks.first().unwrap().start as u64, s);
            assert_eq!(blocks.last().unwrap().end as u64, e);
            for w in blocks.windows(2) {
                assert_eq!(w[0].end, w[1].start, "blocks must be contiguous");
            }
            for b in &blocks {
                assert!(u64::from(b.len()) <= BLOCK_SIZE);
                assert!(!b.is_empty());
            }
        }
    }

    #[test]
    fn small_file_hash_is_plain_md4() {
        let content = b"tiny file";
        assert_eq!(hash_file_parts(content).0, md4(content));
    }

    #[test]
    fn streaming_hash_matches_oneshot_for_small_input() {
        let content = vec![3u8; 100_000];
        let mut h = PartHasher::new();
        for c in content.chunks(7_777) {
            h.update(c);
        }
        assert_eq!(h.finalize(), hash_file_parts(&content));
    }

    #[test]
    #[ignore = "allocates >9.7 MB twice; run with --ignored"]
    fn streaming_hash_matches_oneshot_across_part_boundary() {
        let content: Vec<u8> = (0..PART_SIZE + 123_456).map(|i| (i % 255) as u8).collect();
        let mut h = PartHasher::new();
        for c in content.chunks(1 << 16) {
            h.update(c);
        }
        assert_eq!(h.finalize(), hash_file_parts(&content));
    }

    #[test]
    fn different_content_different_id() {
        assert_ne!(hash_file_parts(b"a"), hash_file_parts(b"b"));
    }
}
