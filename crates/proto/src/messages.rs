//! Typed eDonkey messages and their payload encodings.
//!
//! Two directional message sets exist (see [`crate::opcodes`]):
//! [`ClientServerMessage`] for the TCP session between a client and an index
//! server, and [`PeerMessage`] for client↔client sessions.  The honeypot
//! platform logs exactly the peer messages the paper names — HELLO,
//! START-UPLOAD and REQUEST-PART — but the full set here is what a
//! well-behaved client needs to *pass for a normal peer* (paper §III-B).

use serde::{Deserialize, Serialize};

use crate::error::ProtoError;
use crate::ids::{ClientId, FileId, Ipv4, PeerAddr, UserId};
use crate::opcodes::{client_server as cs, peer, server_client as sc};
use crate::search::SearchExpr;
use crate::tags::Tag;
use crate::wire::{Reader, Writer};

/// One file entry of an OFFER-FILES (or shared-files answer) list.
///
/// On the wire: file hash, client ID, port, then a tag list carrying at
/// least the name and size.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PublishedFile {
    pub file_id: FileId,
    /// Publisher's client ID as known to the server (0 while unpublished).
    pub client_id: ClientId,
    pub port: u16,
    pub tags: Vec<Tag>,
}

impl PublishedFile {
    /// Builds a minimal entry with name and size tags.
    pub fn new(file_id: FileId, name: &str, size: u64) -> Self {
        PublishedFile {
            file_id,
            client_id: ClientId(0),
            port: 0,
            tags: vec![
                Tag::string(crate::tags::special::NAME, name),
                Tag::u32(crate::tags::special::SIZE, size.min(u32::MAX as u64) as u32),
            ],
        }
    }

    /// The advertised name, if present.
    pub fn name(&self) -> Option<&str> {
        crate::tags::get_string(&self.tags, crate::tags::special::NAME)
    }

    /// The advertised size in bytes, if present.
    pub fn size(&self) -> Option<u64> {
        crate::tags::get_u32(&self.tags, crate::tags::special::SIZE).map(u64::from)
    }

    fn encode(&self, w: &mut Writer) {
        w.hash(&self.file_id.0);
        w.u32(self.client_id.0);
        w.u16(self.port);
        Tag::encode_list(&self.tags, w);
    }

    fn decode(r: &mut Reader) -> Result<Self, ProtoError> {
        Ok(PublishedFile {
            file_id: FileId(r.hash()?),
            client_id: ClientId(r.u32()?),
            port: r.u16()?,
            tags: Tag::decode_list(r)?,
        })
    }

    fn encode_list(files: &[PublishedFile], w: &mut Writer) {
        w.u32(files.len() as u32);
        for f in files {
            f.encode(w);
        }
    }

    fn decode_list(r: &mut Reader) -> Result<Vec<PublishedFile>, ProtoError> {
        let n = r.u32()? as usize;
        if n > r.remaining() / 22 + 1 {
            return Err(ProtoError::Truncated("file list count exceeds payload"));
        }
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(PublishedFile::decode(r)?);
        }
        Ok(out)
    }
}

/// Messages on the client↔server TCP session.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ClientServerMessage {
    /// Client → server, first message: identify and request a session.
    LoginRequest { user_id: UserId, client_id: ClientId, port: u16, tags: Vec<Tag> },
    /// Server → client: the granted session client ID.
    IdChange { client_id: ClientId },
    /// Server → client: free-text notice.
    ServerMessage { text: String },
    /// Server → client: population statistics.
    ServerStatus { users: u32, files: u32 },
    /// Client → server: publish / keep-alive the shared-file list.
    OfferFiles { files: Vec<PublishedFile> },
    /// Client → server: who provides this file?
    GetSources { file_id: FileId },
    /// Server → client: the providers known for a file.
    FoundSources { file_id: FileId, sources: Vec<PeerAddr> },
    /// Client → server: keyword search.
    SearchRequest { expr: SearchExpr },
    /// Server → client: files matching a search.
    SearchResult { files: Vec<PublishedFile> },
}

impl ClientServerMessage {
    /// The opcode this message is framed with.
    pub fn opcode(&self) -> u8 {
        match self {
            ClientServerMessage::LoginRequest { .. } => cs::LOGIN_REQUEST,
            ClientServerMessage::IdChange { .. } => sc::ID_CHANGE,
            ClientServerMessage::ServerMessage { .. } => sc::SERVER_MESSAGE,
            ClientServerMessage::ServerStatus { .. } => sc::SERVER_STATUS,
            ClientServerMessage::OfferFiles { .. } => cs::OFFER_FILES,
            ClientServerMessage::GetSources { .. } => cs::GET_SOURCES,
            ClientServerMessage::FoundSources { .. } => sc::FOUND_SOURCES,
            ClientServerMessage::SearchRequest { .. } => cs::SEARCH_REQUEST,
            ClientServerMessage::SearchResult { .. } => sc::SEARCH_RESULT,
        }
    }

    /// Encodes the payload (everything after the opcode byte).
    pub fn encode_payload(&self, w: &mut Writer) {
        match self {
            ClientServerMessage::LoginRequest { user_id, client_id, port, tags } => {
                w.hash(&user_id.0);
                w.u32(client_id.0);
                w.u16(*port);
                Tag::encode_list(tags, w);
            }
            ClientServerMessage::IdChange { client_id } => w.u32(client_id.0),
            ClientServerMessage::ServerMessage { text } => w.str16(text),
            ClientServerMessage::ServerStatus { users, files } => {
                w.u32(*users);
                w.u32(*files);
            }
            ClientServerMessage::OfferFiles { files } => PublishedFile::encode_list(files, w),
            ClientServerMessage::GetSources { file_id } => w.hash(&file_id.0),
            ClientServerMessage::FoundSources { file_id, sources } => {
                w.hash(&file_id.0);
                w.u8(sources.len().min(u8::MAX as usize) as u8);
                for s in sources.iter().take(u8::MAX as usize) {
                    // IPv4 travels little-endian on the eDonkey wire.
                    w.u32(u32::from_le_bytes(s.ip.octets()));
                    w.u16(s.port);
                }
            }
            ClientServerMessage::SearchRequest { expr } => expr.encode(w),
            ClientServerMessage::SearchResult { files } => PublishedFile::encode_list(files, w),
        }
    }

    /// Decodes a payload given its opcode (direction-aware: `from_server`
    /// selects between the overlapping opcode spaces).
    pub fn decode_payload(
        opcode: u8,
        payload: &[u8],
        from_server: bool,
    ) -> Result<Self, ProtoError> {
        let mut r = Reader::new(payload);
        let msg = if from_server {
            match opcode {
                sc::ID_CHANGE => ClientServerMessage::IdChange { client_id: ClientId(r.u32()?) },
                sc::SERVER_MESSAGE => ClientServerMessage::ServerMessage { text: r.str16()? },
                sc::SERVER_STATUS => {
                    ClientServerMessage::ServerStatus { users: r.u32()?, files: r.u32()? }
                }
                sc::FOUND_SOURCES => {
                    let file_id = FileId(r.hash()?);
                    let n = r.u8()? as usize;
                    let mut sources = Vec::with_capacity(n);
                    for _ in 0..n {
                        let ip = Ipv4::from_octets(r.u32()?.to_le_bytes());
                        let port = r.u16()?;
                        sources.push(PeerAddr::new(ip, port));
                    }
                    ClientServerMessage::FoundSources { file_id, sources }
                }
                sc::SEARCH_RESULT => {
                    ClientServerMessage::SearchResult { files: PublishedFile::decode_list(&mut r)? }
                }
                other => {
                    return Err(ProtoError::UnknownOpcode {
                        opcode: other,
                        context: "server→client",
                    })
                }
            }
        } else {
            match opcode {
                cs::LOGIN_REQUEST => ClientServerMessage::LoginRequest {
                    user_id: UserId(r.hash()?),
                    client_id: ClientId(r.u32()?),
                    port: r.u16()?,
                    tags: Tag::decode_list(&mut r)?,
                },
                cs::OFFER_FILES => {
                    ClientServerMessage::OfferFiles { files: PublishedFile::decode_list(&mut r)? }
                }
                cs::GET_SOURCES => ClientServerMessage::GetSources { file_id: FileId(r.hash()?) },
                cs::SEARCH_REQUEST => {
                    ClientServerMessage::SearchRequest { expr: SearchExpr::decode(&mut r)? }
                }
                other => {
                    return Err(ProtoError::UnknownOpcode {
                        opcode: other,
                        context: "client→server",
                    })
                }
            }
        };
        r.expect_end()?;
        Ok(msg)
    }
}

/// One requested byte range, half-open `[start, end)`, as used by
/// REQUEST-PARTS.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PartRange {
    pub start: u32,
    pub end: u32,
}

impl PartRange {
    pub fn new(start: u32, end: u32) -> Self {
        PartRange { start, end }
    }

    /// Length of the range in bytes.
    pub fn len(&self) -> u32 {
        self.end.saturating_sub(self.start)
    }

    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Messages on a client↔client (peer) session.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PeerMessage {
    /// Session opening: the downloading peer introduces itself.
    Hello { user_id: UserId, client_id: ClientId, port: u16, tags: Vec<Tag> },
    /// The provider's response to HELLO.
    HelloAnswer { user_id: UserId, client_id: ClientId, port: u16, tags: Vec<Tag> },
    /// Declare interest in downloading `file_id`.
    StartUpload { file_id: FileId },
    /// Provider grants an upload slot.
    AcceptUpload,
    /// Provider reports the requester's queue position instead.
    QueueRank { rank: u32 },
    /// Ask for up to three byte ranges of `file_id`.  eDonkey packs exactly
    /// three start/end pairs per message; unused slots are zero-length.
    RequestParts { file_id: FileId, ranges: [PartRange; 3] },
    /// One block of data in response.
    SendingPart { file_id: FileId, start: u32, end: u32, data: Vec<u8> },
    /// Ask the remote peer for its full shared-file list (greedy strategy).
    AskSharedFiles,
    /// The shared-file list (peers may refuse: empty answer).
    AskSharedFilesAnswer { files: Vec<PublishedFile> },
    /// Ask the provider for its name for a file ID.
    FileRequest { file_id: FileId },
    /// Provider's name for the file.
    FileRequestAnswer { file_id: FileId, name: String },
}

impl PeerMessage {
    /// The opcode this message is framed with.
    pub fn opcode(&self) -> u8 {
        match self {
            PeerMessage::Hello { .. } => peer::HELLO,
            PeerMessage::HelloAnswer { .. } => peer::HELLO_ANSWER,
            PeerMessage::StartUpload { .. } => peer::START_UPLOAD,
            PeerMessage::AcceptUpload => peer::ACCEPT_UPLOAD,
            PeerMessage::QueueRank { .. } => peer::QUEUE_RANK,
            PeerMessage::RequestParts { .. } => peer::REQUEST_PARTS,
            PeerMessage::SendingPart { .. } => peer::SENDING_PART,
            PeerMessage::AskSharedFiles => peer::ASK_SHARED_FILES,
            PeerMessage::AskSharedFilesAnswer { .. } => peer::ASK_SHARED_FILES_ANSWER,
            PeerMessage::FileRequest { .. } => peer::FILE_REQUEST,
            PeerMessage::FileRequestAnswer { .. } => peer::FILE_REQUEST_ANSWER,
        }
    }

    /// A short stable label used by log records and reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            PeerMessage::Hello { .. } => "HELLO",
            PeerMessage::HelloAnswer { .. } => "HELLO-ANSWER",
            PeerMessage::StartUpload { .. } => "START-UPLOAD",
            PeerMessage::AcceptUpload => "ACCEPT-UPLOAD",
            PeerMessage::QueueRank { .. } => "QUEUE-RANK",
            PeerMessage::RequestParts { .. } => "REQUEST-PART",
            PeerMessage::SendingPart { .. } => "SENDING-PART",
            PeerMessage::AskSharedFiles => "ASK-SHARED-FILES",
            PeerMessage::AskSharedFilesAnswer { .. } => "ASK-SHARED-FILES-ANSWER",
            PeerMessage::FileRequest { .. } => "FILE-REQUEST",
            PeerMessage::FileRequestAnswer { .. } => "FILE-REQUEST-ANSWER",
        }
    }

    /// Encodes the payload (everything after the opcode byte).
    pub fn encode_payload(&self, w: &mut Writer) {
        fn hello_body(
            w: &mut Writer,
            user_id: &UserId,
            client_id: &ClientId,
            port: u16,
            tags: &[Tag],
        ) {
            w.hash(&user_id.0);
            w.u32(client_id.0);
            w.u16(port);
            Tag::encode_list(tags, w);
        }
        match self {
            PeerMessage::Hello { user_id, client_id, port, tags } => {
                // HELLO carries a leading hash-size byte (16) — a quirk kept
                // from the original protocol so HELLO can be told apart from
                // a server LOGIN-REQUEST arriving on the wrong port.
                w.u8(16);
                hello_body(w, user_id, client_id, *port, tags);
            }
            PeerMessage::HelloAnswer { user_id, client_id, port, tags } => {
                hello_body(w, user_id, client_id, *port, tags);
            }
            PeerMessage::StartUpload { file_id } => w.hash(&file_id.0),
            PeerMessage::AcceptUpload => {}
            PeerMessage::QueueRank { rank } => w.u32(*rank),
            PeerMessage::RequestParts { file_id, ranges } => {
                w.hash(&file_id.0);
                for rg in ranges {
                    w.u32(rg.start);
                }
                for rg in ranges {
                    w.u32(rg.end);
                }
            }
            PeerMessage::SendingPart { file_id, start, end, data } => {
                w.hash(&file_id.0);
                w.u32(*start);
                w.u32(*end);
                w.bytes(data);
            }
            PeerMessage::AskSharedFiles => {}
            PeerMessage::AskSharedFilesAnswer { files } => {
                w.u32(files.len() as u32);
                for f in files {
                    f.encode(w);
                }
            }
            PeerMessage::FileRequest { file_id } => w.hash(&file_id.0),
            PeerMessage::FileRequestAnswer { file_id, name } => {
                w.hash(&file_id.0);
                w.str16(name);
            }
        }
    }

    /// Decodes a peer-message payload given its opcode.
    pub fn decode_payload(opcode: u8, payload: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(payload);
        let msg = match opcode {
            peer::HELLO => {
                let hash_len = r.u8()?;
                if hash_len != 16 {
                    return Err(ProtoError::Invalid("HELLO hash-size byte must be 16"));
                }
                PeerMessage::Hello {
                    user_id: UserId(r.hash()?),
                    client_id: ClientId(r.u32()?),
                    port: r.u16()?,
                    tags: Tag::decode_list(&mut r)?,
                }
            }
            peer::HELLO_ANSWER => PeerMessage::HelloAnswer {
                user_id: UserId(r.hash()?),
                client_id: ClientId(r.u32()?),
                port: r.u16()?,
                tags: Tag::decode_list(&mut r)?,
            },
            peer::START_UPLOAD => PeerMessage::StartUpload { file_id: FileId(r.hash()?) },
            peer::ACCEPT_UPLOAD => PeerMessage::AcceptUpload,
            peer::QUEUE_RANK => PeerMessage::QueueRank { rank: r.u32()? },
            peer::REQUEST_PARTS => {
                let file_id = FileId(r.hash()?);
                let starts = [r.u32()?, r.u32()?, r.u32()?];
                let ends = [r.u32()?, r.u32()?, r.u32()?];
                let ranges = [
                    PartRange::new(starts[0], ends[0]),
                    PartRange::new(starts[1], ends[1]),
                    PartRange::new(starts[2], ends[2]),
                ];
                PeerMessage::RequestParts { file_id, ranges }
            }
            peer::SENDING_PART => {
                let file_id = FileId(r.hash()?);
                let start = r.u32()?;
                let end = r.u32()?;
                if end < start {
                    return Err(ProtoError::Invalid("SENDING-PART end before start"));
                }
                let data = r.take(r.remaining())?.to_vec();
                if data.len() as u64 != u64::from(end - start) {
                    return Err(ProtoError::Invalid("SENDING-PART data length mismatch"));
                }
                PeerMessage::SendingPart { file_id, start, end, data }
            }
            peer::ASK_SHARED_FILES => PeerMessage::AskSharedFiles,
            peer::ASK_SHARED_FILES_ANSWER => {
                let n = r.u32()? as usize;
                if n > r.remaining() / 22 + 1 {
                    return Err(ProtoError::Truncated("shared list count exceeds payload"));
                }
                let mut files = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    files.push(PublishedFile::decode(&mut r)?);
                }
                PeerMessage::AskSharedFilesAnswer { files }
            }
            peer::FILE_REQUEST => PeerMessage::FileRequest { file_id: FileId(r.hash()?) },
            peer::FILE_REQUEST_ANSWER => {
                PeerMessage::FileRequestAnswer { file_id: FileId(r.hash()?), name: r.str16()? }
            }
            other => {
                return Err(ProtoError::UnknownOpcode { opcode: other, context: "peer↔peer" })
            }
        };
        r.expect_end()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::special;

    fn rt_peer(msg: &PeerMessage) -> PeerMessage {
        let mut w = Writer::new();
        msg.encode_payload(&mut w);
        let buf = w.into_bytes();
        PeerMessage::decode_payload(msg.opcode(), &buf).expect("decode")
    }

    fn rt_cs(msg: &ClientServerMessage, from_server: bool) -> ClientServerMessage {
        let mut w = Writer::new();
        msg.encode_payload(&mut w);
        let buf = w.into_bytes();
        ClientServerMessage::decode_payload(msg.opcode(), &buf, from_server).expect("decode")
    }

    fn sample_tags() -> Vec<Tag> {
        vec![Tag::string(special::NAME, "honeypot-12"), Tag::u32(special::VERSION, 0x3c)]
    }

    #[test]
    fn hello_round_trip() {
        let m = PeerMessage::Hello {
            user_id: UserId::from_seed(b"u"),
            client_id: ClientId(0x0a00_020f),
            port: 4662,
            tags: sample_tags(),
        };
        assert_eq!(rt_peer(&m), m);
        assert_eq!(m.kind_name(), "HELLO");
    }

    #[test]
    fn hello_answer_round_trip() {
        let m = PeerMessage::HelloAnswer {
            user_id: UserId::from_seed(b"v"),
            client_id: ClientId::low(7),
            port: 4672,
            tags: vec![],
        };
        assert_eq!(rt_peer(&m), m);
    }

    #[test]
    fn hello_with_bad_hash_size_rejected() {
        let m = PeerMessage::Hello {
            user_id: UserId::from_seed(b"u"),
            client_id: ClientId(1),
            port: 1,
            tags: vec![],
        };
        let mut w = Writer::new();
        m.encode_payload(&mut w);
        let mut buf = w.into_bytes();
        buf[0] = 15;
        assert!(PeerMessage::decode_payload(peer::HELLO, &buf).is_err());
    }

    #[test]
    fn start_upload_and_accept_round_trip() {
        let m = PeerMessage::StartUpload { file_id: FileId::from_seed(b"f") };
        assert_eq!(rt_peer(&m), m);
        assert_eq!(rt_peer(&PeerMessage::AcceptUpload), PeerMessage::AcceptUpload);
    }

    #[test]
    fn request_parts_round_trip_preserves_range_order() {
        let m = PeerMessage::RequestParts {
            file_id: FileId::from_seed(b"f"),
            ranges: [
                PartRange::new(0, 184_320),
                PartRange::new(184_320, 368_640),
                PartRange::new(0, 0),
            ],
        };
        assert_eq!(rt_peer(&m), m);
    }

    #[test]
    fn sending_part_round_trip() {
        let data = vec![0xAAu8; 1024];
        let m = PeerMessage::SendingPart {
            file_id: FileId::from_seed(b"f"),
            start: 100,
            end: 100 + data.len() as u32,
            data,
        };
        assert_eq!(rt_peer(&m), m);
    }

    #[test]
    fn sending_part_length_mismatch_rejected() {
        let mut w = Writer::new();
        w.hash(&FileId::from_seed(b"f").0);
        w.u32(0);
        w.u32(10); // declares 10 bytes …
        w.bytes(&[1, 2, 3]); // … but carries 3
        assert!(PeerMessage::decode_payload(peer::SENDING_PART, &w.into_bytes()).is_err());
    }

    #[test]
    fn shared_files_answer_round_trip() {
        let m = PeerMessage::AskSharedFilesAnswer {
            files: vec![
                PublishedFile::new(FileId::from_seed(b"a"), "a.avi", 734_003_200),
                PublishedFile::new(FileId::from_seed(b"b"), "b.mp3", 5_242_880),
            ],
        };
        assert_eq!(rt_peer(&m), m);
        assert_eq!(rt_peer(&PeerMessage::AskSharedFiles), PeerMessage::AskSharedFiles);
    }

    #[test]
    fn file_request_round_trip() {
        let id = FileId::from_seed(b"f");
        let m = PeerMessage::FileRequest { file_id: id };
        assert_eq!(rt_peer(&m), m);
        let m = PeerMessage::FileRequestAnswer { file_id: id, name: "x.iso".into() };
        assert_eq!(rt_peer(&m), m);
    }

    #[test]
    fn login_round_trip() {
        let m = ClientServerMessage::LoginRequest {
            user_id: UserId::from_seed(b"hp"),
            client_id: ClientId(0),
            port: 4662,
            tags: sample_tags(),
        };
        assert_eq!(rt_cs(&m, false), m);
    }

    #[test]
    fn offer_files_round_trip() {
        let m = ClientServerMessage::OfferFiles {
            files: vec![PublishedFile::new(FileId::from_seed(b"movie"), "movie.avi", 1 << 30)],
        };
        assert_eq!(rt_cs(&m, false), m);
    }

    #[test]
    fn sources_round_trip() {
        let m = ClientServerMessage::GetSources { file_id: FileId::from_seed(b"f") };
        assert_eq!(rt_cs(&m, false), m);
        let m = ClientServerMessage::FoundSources {
            file_id: FileId::from_seed(b"f"),
            sources: vec![
                PeerAddr::new(Ipv4::new(10, 1, 2, 3), 4662),
                PeerAddr::new(Ipv4::new(192, 0, 2, 99), 4711),
            ],
        };
        assert_eq!(rt_cs(&m, true), m);
    }

    #[test]
    fn search_round_trip() {
        let m = ClientServerMessage::SearchRequest {
            expr: crate::search::SearchExpr::phrase("ubuntu linux iso").unwrap(),
        };
        assert_eq!(rt_cs(&m, false), m);
        let m = ClientServerMessage::SearchResult {
            files: vec![PublishedFile::new(FileId::from_seed(b"u"), "ubuntu.iso", 700 << 20)],
        };
        assert_eq!(rt_cs(&m, true), m);
    }

    #[test]
    fn server_side_messages_round_trip() {
        let m = ClientServerMessage::IdChange { client_id: ClientId(0xDEAD_BEEF) };
        assert_eq!(rt_cs(&m, true), m);
        let m = ClientServerMessage::ServerMessage { text: "welcome".into() };
        assert_eq!(rt_cs(&m, true), m);
        let m = ClientServerMessage::ServerStatus { users: 1_000_000, files: 90_000_000 };
        assert_eq!(rt_cs(&m, true), m);
    }

    #[test]
    fn direction_matters_for_opcode_0x01() {
        let m = ClientServerMessage::LoginRequest {
            user_id: UserId::from_seed(b"u"),
            client_id: ClientId(0),
            port: 4662,
            tags: vec![],
        };
        let mut w = Writer::new();
        m.encode_payload(&mut w);
        let buf = w.into_bytes();
        // Interpreted as server→client, opcode 0x01 is unknown.
        assert!(ClientServerMessage::decode_payload(0x01, &buf, true).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let m = PeerMessage::StartUpload { file_id: FileId::from_seed(b"f") };
        let mut w = Writer::new();
        m.encode_payload(&mut w);
        let mut buf = w.into_bytes();
        buf.push(0xFF);
        assert!(matches!(
            PeerMessage::decode_payload(m.opcode(), &buf),
            Err(ProtoError::TrailingBytes(1))
        ));
    }

    #[test]
    fn part_range_len() {
        assert_eq!(PartRange::new(10, 30).len(), 20);
        assert!(PartRange::new(5, 5).is_empty());
        assert_eq!(PartRange::new(30, 10).len(), 0, "inverted range saturates");
    }
}
