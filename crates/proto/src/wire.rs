//! Low-level little-endian wire primitives shared by the tag system and the
//! message codec.
//!
//! [`Writer`] accumulates bytes into a growable buffer; [`Reader`] is a
//! bounds-checked cursor over a received payload.  Every multi-byte integer
//! on the eDonkey wire is little-endian.

use bytes::{BufMut, BytesMut};

use crate::error::ProtoError;

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: BytesMut::with_capacity(64) }
    }

    /// Creates a writer with the given initial capacity (use when the caller
    /// knows the approximate payload size, e.g. SENDING-PART bodies).
    pub fn with_capacity(cap: usize) -> Self {
        Writer { buf: BytesMut::with_capacity(cap) }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// A 16-byte hash (file ID / user ID).
    pub fn hash(&mut self, v: &[u8; 16]) {
        self.buf.put_slice(v);
    }

    /// u16-length-prefixed string.
    pub fn str16(&mut self, s: &str) {
        self.u16(s.len() as u16);
        self.bytes(s.as_bytes());
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes and returns the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Finishes into a `bytes::BytesMut` (zero-copy handoff to sockets).
    pub fn into_bytes_mut(self) -> BytesMut {
        self.buf
    }
}

/// Bounds-checked little-endian cursor.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated("payload shorter than declared field"));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// A 16-byte hash.
    pub fn hash(&mut self) -> Result<[u8; 16], ProtoError> {
        let b = self.take(16)?;
        Ok(b.try_into().expect("16 bytes"))
    }

    /// u16-length-prefixed string (lossily decoded; real-world eDonkey names
    /// are frequently not valid UTF-8).
    pub fn str16(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        Ok(String::from_utf8_lossy(self.take(len)?).into_owned())
    }

    /// Asserts the payload is fully consumed (strict decoders).
    pub fn expect_end(&self) -> Result<(), ProtoError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(self.remaining()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_little_endian() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u16(0x1234);
        w.u32(0xDEADBEEF);
        w.u64(0x0102030405060708);
        let buf = w.into_bytes();
        assert_eq!(&buf[1..3], &[0x34, 0x12], "u16 is little-endian");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64().unwrap(), 0x0102030405060708);
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn str16_round_trip() {
        let mut w = Writer::new();
        w.str16("hello");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.str16().unwrap(), "hello");
    }

    #[test]
    fn truncated_reads_error_without_panicking() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
        // Failed read must not consume anything it could not fully take.
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut r = Reader::new(&[1, 2, 3]);
        r.u8().unwrap();
        assert!(matches!(r.expect_end(), Err(ProtoError::TrailingBytes(2))));
    }

    #[test]
    fn hash_round_trip() {
        let h = [7u8; 16];
        let mut w = Writer::new();
        w.hash(&h);
        let buf = w.into_bytes();
        assert_eq!(Reader::new(&buf).hash().unwrap(), h);
    }
}
