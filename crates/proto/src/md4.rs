//! MD4 message digest (RFC 1320), implemented from scratch.
//!
//! The eDonkey network identifies files and users by MD4 digests: each file
//! is hashed per 9,728,000-byte *part* and the file identifier is the MD4 of
//! the concatenated part hashes (see [`crate::parts`]).  MD4 is also used by
//! the honeypot platform's first anonymisation step (a one-way hash of peer
//! IP addresses applied before anything is written to disk).
//!
//! MD4 is cryptographically broken for collision resistance, but the network
//! protocol mandates it; this module is a faithful, dependency-free
//! implementation validated against the RFC 1320 test vectors.

/// Output size of MD4 in bytes.
pub const DIGEST_LEN: usize = 16;

/// Block size of MD4 in bytes.
pub const BLOCK_LEN: usize = 64;

const INIT_STATE: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];

#[inline(always)]
fn f(x: u32, y: u32, z: u32) -> u32 {
    (x & y) | (!x & z)
}

#[inline(always)]
fn g(x: u32, y: u32, z: u32) -> u32 {
    (x & y) | (x & z) | (y & z)
}

#[inline(always)]
fn h(x: u32, y: u32, z: u32) -> u32 {
    x ^ y ^ z
}

/// Incremental MD4 hasher.
///
/// Feed input with [`Md4::update`] and finish with [`Md4::finalize`]; the
/// one-shot convenience [`md4`] covers the common case.
///
/// ```
/// use edonkey_proto::md4::{md4, Md4};
///
/// let mut hasher = Md4::new();
/// hasher.update(b"abc");
/// assert_eq!(hasher.finalize(), md4(b"abc"));
/// ```
#[derive(Clone)]
pub struct Md4 {
    state: [u32; 4],
    /// Total number of input bytes consumed so far.
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Md4 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Md4 {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("Md4").field("len", &self.len).finish_non_exhaustive()
    }
}

impl Md4 {
    /// Creates a hasher in the RFC 1320 initial state.
    pub fn new() -> Self {
        Md4 { state: INIT_STATE, len: 0, buf: [0u8; BLOCK_LEN], buf_len: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if rest.is_empty() {
                // Everything fit into the partial block; the tail handling
                // below must not clobber `buf_len`.
                return;
            }
        }
        let mut chunks = rest.chunks_exact(BLOCK_LEN);
        for block in &mut chunks {
            let mut tmp = [0u8; BLOCK_LEN];
            tmp.copy_from_slice(block);
            self.compress(&tmp);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Completes the hash and returns the 16-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: a single 0x80 byte, zeros, then the 64-bit little-endian
        // message length, so that the total is a multiple of 64 bytes.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Write the length directly into the buffer and compress; going
        // through `update` would corrupt `len` (harmless but sloppy).
        self.buf[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut x = [0u32; 16];
        for (i, w) in x.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }

        let [mut a, mut b, mut c, mut d] = self.state;

        macro_rules! round {
            ($func:ident, $add:expr, $order:expr, $shifts:expr) => {
                for (j, &k) in $order.iter().enumerate() {
                    let s = $shifts[j % 4];
                    let t = a
                        .wrapping_add($func(b, c, d))
                        .wrapping_add(x[k])
                        .wrapping_add($add)
                        .rotate_left(s);
                    a = d;
                    d = c;
                    c = b;
                    b = t;
                }
            };
        }

        const R1: [usize; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];
        const R2: [usize; 16] = [0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15];
        const R3: [usize; 16] = [0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15];

        round!(f, 0u32, R1, [3u32, 7, 11, 19]);
        round!(g, 0x5a82_7999u32, R2, [3u32, 5, 9, 13]);
        round!(h, 0x6ed9_eba1u32, R3, [3u32, 9, 11, 15]);

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot MD4 of `data`.
pub fn md4(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut hasher = Md4::new();
    hasher.update(data);
    hasher.finalize()
}

/// Renders a digest as lowercase hex, the conventional display for eDonkey
/// hashes.
pub fn to_hex(digest: &[u8; DIGEST_LEN]) -> String {
    let mut s = String::with_capacity(2 * DIGEST_LEN);
    for b in digest {
        use std::fmt::Write;
        let _ = write!(s, "{b:02x}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn rfc1320_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "31d6cfe0d16ae931b73c59d7e0c089c0"),
            (b"a", "bde52cb31de33e46245e05fbdbd6fb24"),
            (b"abc", "a448017aaf21d8525fc10ae87aa6729d"),
            (b"message digest", "d9130a8164549fe818874806e1c7014b"),
            (b"abcdefghijklmnopqrstuvwxyz", "d79e1c308aa5bbcdeea8ed63df412da9"),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "043f8582f241db351ce627e153e7f0e4",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "e33b4ddc9c38f2199c3e7b164fcc0536",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(md4(input), hex(want), "md4({:?})", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn incremental_matches_oneshot_at_block_boundaries() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 1000, 1024] {
            let mut hasher = Md4::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            assert_eq!(hasher.finalize(), md4(&data), "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time_matches_oneshot() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut hasher = Md4::new();
        for b in data {
            hasher.update(&[*b]);
        }
        assert_eq!(hasher.finalize(), md4(data));
    }

    #[test]
    fn long_input_spanning_many_blocks() {
        // Regression guard for the chunked fast path: 1 MiB of a repeating
        // pattern, compared against a two-pass computation.
        let data: Vec<u8> = (0..1 << 20).map(|i| (i * 31 % 256) as u8).collect();
        let whole = md4(&data);
        let mut hasher = Md4::new();
        for chunk in data.chunks(4096 + 13) {
            hasher.update(chunk);
        }
        assert_eq!(hasher.finalize(), whole);
    }

    #[test]
    fn to_hex_renders_lowercase() {
        assert_eq!(to_hex(&md4(b"")), "31d6cfe0d16ae931b73c59d7e0c089c0");
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(md4(b"file-a"), md4(b"file-b"));
    }
}
