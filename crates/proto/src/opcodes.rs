//! Protocol framing constants and opcodes, after the unofficial eMule
//! protocol specification (Kulbak & Bickson, 2005) cited by the paper.
//!
//! Every eDonkey TCP frame starts with a one-byte protocol marker, a
//! little-endian u32 length covering `opcode + payload`, and the opcode
//! byte.  Client↔server and client↔client conversations reuse some opcode
//! values (e.g. `0x01` is LOGIN-REQUEST towards a server but HELLO towards a
//! peer), so decoding is always directional.

/// Classic eDonkey protocol marker.
pub const PROTO_EDONKEY: u8 = 0xE3;
/// eMule extended protocol marker (recognised, not required).
pub const PROTO_EMULE: u8 = 0xC5;
/// Compressed eMule frames (recognised so we can reject them cleanly).
pub const PROTO_PACKED: u8 = 0xD4;

/// Hard upper bound on a frame's declared length.  The largest legitimate
/// frame we ever produce is a SENDING-PART body (≤ 180 KB block + headers);
/// 4 MiB leaves generous slack while stopping hostile 4 GiB allocations.
pub const MAX_FRAME_LEN: u32 = 4 << 20;

/// Client → server opcodes.
pub mod client_server {
    /// LOGIN-REQUEST: first message after connecting to a server.
    pub const LOGIN_REQUEST: u8 = 0x01;
    /// OFFER-FILES: publish (or keep-alive) the client's shared-file list.
    pub const OFFER_FILES: u8 = 0x15;
    /// GET-SOURCES: ask which peers provide a file ID.
    pub const GET_SOURCES: u8 = 0x19;
    /// SEARCH-REQUEST: keyword search (recognised; honeypots never search).
    pub const SEARCH_REQUEST: u8 = 0x16;
}

/// Server → client opcodes.
pub mod server_client {
    /// ID-CHANGE: the server grants the session client ID (high or low).
    pub const ID_CHANGE: u8 = 0x40;
    /// SERVER-MESSAGE: free-text MOTD / warnings.
    pub const SERVER_MESSAGE: u8 = 0x38;
    /// SERVER-STATUS: user / file counts.
    pub const SERVER_STATUS: u8 = 0x34;
    /// FOUND-SOURCES: answer to GET-SOURCES.
    pub const FOUND_SOURCES: u8 = 0x42;
    /// SEARCH-RESULT: answer to SEARCH-REQUEST.
    pub const SEARCH_RESULT: u8 = 0x33;
}

/// Client ↔ client (peer) opcodes.
pub mod peer {
    /// HELLO: opens a peer session (same value as LOGIN-REQUEST, different
    /// direction — footnote in module docs).
    pub const HELLO: u8 = 0x01;
    /// HELLO-ANSWER.
    pub const HELLO_ANSWER: u8 = 0x4C;
    /// START-UPLOAD request: declare interest in downloading a file.
    pub const START_UPLOAD: u8 = 0x54;
    /// ACCEPT-UPLOAD: provider accepts the requester into its upload slot.
    pub const ACCEPT_UPLOAD: u8 = 0x55;
    /// QUEUE-RANK: provider reports the requester's upload-queue position.
    pub const QUEUE_RANK: u8 = 0x5C;
    /// REQUEST-PARTS: ask for up to three byte ranges of a file.
    pub const REQUEST_PARTS: u8 = 0x47;
    /// SENDING-PART: one data block in answer to REQUEST-PARTS.
    pub const SENDING_PART: u8 = 0x46;
    /// ASK-SHARED-FILES: request the remote peer's shared-file list (used by
    /// the greedy honeypot strategy).
    pub const ASK_SHARED_FILES: u8 = 0x4E;
    /// ASK-SHARED-FILES-ANSWER.
    pub const ASK_SHARED_FILES_ANSWER: u8 = 0x4F;
    /// FILE-REQUEST: ask the provider for the name it has for a file ID.
    pub const FILE_REQUEST: u8 = 0x58;
    /// FILE-REQUEST-ANSWER.
    pub const FILE_REQUEST_ANSWER: u8 = 0x59;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directional_reuse_of_0x01_is_intentional() {
        assert_eq!(client_server::LOGIN_REQUEST, peer::HELLO);
    }

    #[test]
    fn opcode_values_match_the_emule_spec() {
        assert_eq!(client_server::OFFER_FILES, 0x15);
        assert_eq!(client_server::GET_SOURCES, 0x19);
        assert_eq!(server_client::FOUND_SOURCES, 0x42);
        assert_eq!(server_client::ID_CHANGE, 0x40);
        assert_eq!(peer::START_UPLOAD, 0x54);
        assert_eq!(peer::REQUEST_PARTS, 0x47);
        assert_eq!(peer::SENDING_PART, 0x46);
        assert_eq!(peer::ASK_SHARED_FILES, 0x4E);
    }

    #[test]
    fn frame_limit_fits_a_sending_part_block() {
        // 180 KB block + frame/message headers must fit under the limit.
        let block = u32::try_from(crate::parts::BLOCK_SIZE).unwrap();
        assert!(MAX_FRAME_LEN > block + 64, "must fit a SENDING-PART block");
    }
}
