//! Frame-level codec: turning typed messages into length-prefixed TCP frames
//! and back.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! u8   protocol marker  (0xE3 classic)
//! u32  length           (covers opcode byte + payload)
//! u8   opcode
//! [u8] payload
//! ```
//!
//! [`FrameDecoder`] is an incremental decoder suitable for a TCP stream: feed
//! it arbitrary chunks, pull out complete frames.

use crate::error::ProtoError;
use crate::messages::{ClientServerMessage, PeerMessage};
use crate::opcodes::{MAX_FRAME_LEN, PROTO_EDONKEY, PROTO_EMULE, PROTO_PACKED};
use crate::wire::Writer;

/// A raw, framing-validated frame: opcode plus opaque payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawFrame {
    pub proto: u8,
    pub opcode: u8,
    pub payload: Vec<u8>,
}

/// Encodes one already-serialised payload into a full frame.
pub fn encode_frame(opcode: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + payload.len());
    out.push(PROTO_EDONKEY);
    out.extend_from_slice(&(1 + payload.len() as u32).to_le_bytes());
    out.push(opcode);
    out.extend_from_slice(payload);
    out
}

/// Encodes a peer message into a full frame.
pub fn encode_peer_message(msg: &PeerMessage) -> Vec<u8> {
    let mut w = Writer::new();
    msg.encode_payload(&mut w);
    encode_frame(msg.opcode(), &w.into_bytes())
}

/// Encodes a client↔server message into a full frame.
pub fn encode_client_server_message(msg: &ClientServerMessage) -> Vec<u8> {
    let mut w = Writer::new();
    msg.encode_payload(&mut w);
    encode_frame(msg.opcode(), &w.into_bytes())
}

/// Decodes exactly one frame from `data`, returning it and the number of
/// bytes consumed.  Fails on partial input (use [`FrameDecoder`] for
/// streams).
pub fn decode_frame(data: &[u8]) -> Result<(RawFrame, usize), ProtoError> {
    if data.len() < 6 {
        return Err(ProtoError::Truncated("frame header"));
    }
    let proto = data[0];
    if proto != PROTO_EDONKEY && proto != PROTO_EMULE && proto != PROTO_PACKED {
        return Err(ProtoError::BadProtocolByte(proto));
    }
    let len = u32::from_le_bytes([data[1], data[2], data[3], data[4]]);
    if len == 0 {
        return Err(ProtoError::Invalid("frame length must cover the opcode byte"));
    }
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::OversizedFrame { declared: len, limit: MAX_FRAME_LEN });
    }
    let total = 5 + len as usize;
    if data.len() < total {
        return Err(ProtoError::Truncated("frame body"));
    }
    let opcode = data[5];
    let payload = data[6..total].to_vec();
    Ok((RawFrame { proto, opcode, payload }, total))
}

/// Incremental frame decoder for byte streams.
///
/// ```
/// use edonkey_proto::codec::{encode_peer_message, FrameDecoder};
/// use edonkey_proto::messages::PeerMessage;
///
/// let frame = encode_peer_message(&PeerMessage::AskSharedFiles);
/// let mut dec = FrameDecoder::new();
/// dec.feed(&frame[..3]);          // partial chunk: nothing ready yet
/// assert!(dec.next_frame().unwrap().is_none());
/// dec.feed(&frame[3..]);
/// let raw = dec.next_frame().unwrap().unwrap();
/// assert_eq!(PeerMessage::decode_payload(raw.opcode, &raw.payload).unwrap(),
///            PeerMessage::AskSharedFiles);
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read offset into `buf`; consumed prefixes are compacted lazily.
    start: usize,
}

impl FrameDecoder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes.
    pub fn feed(&mut self, data: &[u8]) {
        // Compact when the dead prefix dominates, so long sessions do not
        // grow the buffer without bound.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pulls the next complete frame, `Ok(None)` if more bytes are needed.
    ///
    /// Framing errors (bad marker, oversized length) are fatal for the
    /// stream: the caller should drop the connection, as resynchronising an
    /// eDonkey stream is not possible in general.
    pub fn next_frame(&mut self) -> Result<Option<RawFrame>, ProtoError> {
        let pending = &self.buf[self.start..];
        match decode_frame(pending) {
            Ok((frame, used)) => {
                self.start += used;
                Ok(Some(frame))
            }
            Err(ProtoError::Truncated(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FileId;
    use crate::messages::PartRange;

    #[test]
    fn frame_round_trip() {
        let msg = PeerMessage::StartUpload { file_id: FileId::from_seed(b"f") };
        let bytes = encode_peer_message(&msg);
        let (raw, used) = decode_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(raw.proto, PROTO_EDONKEY);
        assert_eq!(PeerMessage::decode_payload(raw.opcode, &raw.payload).unwrap(), msg);
    }

    #[test]
    fn bad_marker_rejected() {
        let mut bytes = encode_peer_message(&PeerMessage::AcceptUpload);
        bytes[0] = 0x42;
        assert!(matches!(decode_frame(&bytes), Err(ProtoError::BadProtocolByte(0x42))));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut bytes = encode_peer_message(&PeerMessage::AcceptUpload);
        bytes[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(ProtoError::OversizedFrame { .. })));
    }

    #[test]
    fn zero_length_rejected() {
        let bytes = [PROTO_EDONKEY, 0, 0, 0, 0, 0x55];
        assert!(decode_frame(&bytes).is_err());
    }

    #[test]
    fn streaming_decoder_handles_arbitrary_chunking() {
        let msgs = vec![
            PeerMessage::AskSharedFiles,
            PeerMessage::StartUpload { file_id: FileId::from_seed(b"x") },
            PeerMessage::RequestParts {
                file_id: FileId::from_seed(b"x"),
                ranges: [PartRange::new(0, 10), PartRange::new(10, 20), PartRange::new(0, 0)],
            },
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_peer_message(m));
        }
        // Feed in pathological chunk sizes and confirm all frames surface in
        // order.
        for chunk in [1usize, 2, 3, 5, 7, 11, 64] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                dec.feed(piece);
                while let Some(raw) = dec.next_frame().unwrap() {
                    got.push(PeerMessage::decode_payload(raw.opcode, &raw.payload).unwrap());
                }
            }
            assert_eq!(got, msgs, "chunk size {chunk}");
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn decoder_surfaces_fatal_errors() {
        let mut dec = FrameDecoder::new();
        dec.feed(&[0x00, 1, 2, 3, 4, 5]);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn decoder_compacts_consumed_prefix() {
        let frame = encode_peer_message(&PeerMessage::AcceptUpload);
        let mut dec = FrameDecoder::new();
        for _ in 0..10_000 {
            dec.feed(&frame);
            assert!(dec.next_frame().unwrap().is_some());
        }
        // After compaction kicks in, the internal buffer must stay bounded.
        assert!(dec.buf.len() < 64 * 1024, "buffer grew to {}", dec.buf.len());
    }
}
