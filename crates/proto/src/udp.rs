//! The eDonkey UDP side-protocol.
//!
//! Besides the TCP session with its home server, a 2008-era client polls
//! *other* servers over UDP: global source queries (so a honeypot can be
//! discovered by peers that are "not connected to the server", as the paper
//! notes in §III-B) and server status pings.  UDP datagrams use the same
//! `0xE3` marker but no length prefix — one datagram, one message.
//!
//! Opcodes (eMule protocol spec):
//!
//! ```text
//! 0x96 GLOB-STAT-REQ      challenge u32
//! 0x97 GLOB-STAT-RES      challenge u32, users u32, files u32
//! 0x9A GLOB-GET-SOURCES   one or more 16-byte file hashes
//! 0x9B GLOB-FOUND-SOURCES file hash, u8 count, count × (ip u32 LE, port u16)
//! ```

use serde::{Deserialize, Serialize};

use crate::error::ProtoError;
use crate::ids::{FileId, Ipv4, PeerAddr};
use crate::opcodes::PROTO_EDONKEY;
use crate::wire::{Reader, Writer};

/// UDP opcodes.
pub mod opcodes {
    pub const GLOB_STAT_REQ: u8 = 0x96;
    pub const GLOB_STAT_RES: u8 = 0x97;
    pub const GLOB_GET_SOURCES: u8 = 0x9A;
    pub const GLOB_FOUND_SOURCES: u8 = 0x9B;
}

/// A UDP datagram message.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum UdpMessage {
    /// Client → server: status ping with an anti-spoof challenge.
    GlobStatReq { challenge: u32 },
    /// Server → client: status answer echoing the challenge.
    GlobStatRes { challenge: u32, users: u32, files: u32 },
    /// Client → server: who provides these files?
    GlobGetSources { files: Vec<FileId> },
    /// Server → client: providers for one file.
    GlobFoundSources { file: FileId, sources: Vec<PeerAddr> },
}

impl UdpMessage {
    /// The message's opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            UdpMessage::GlobStatReq { .. } => opcodes::GLOB_STAT_REQ,
            UdpMessage::GlobStatRes { .. } => opcodes::GLOB_STAT_RES,
            UdpMessage::GlobGetSources { .. } => opcodes::GLOB_GET_SOURCES,
            UdpMessage::GlobFoundSources { .. } => opcodes::GLOB_FOUND_SOURCES,
        }
    }

    /// Encodes the message into a datagram.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(PROTO_EDONKEY);
        w.u8(self.opcode());
        match self {
            UdpMessage::GlobStatReq { challenge } => w.u32(*challenge),
            UdpMessage::GlobStatRes { challenge, users, files } => {
                w.u32(*challenge);
                w.u32(*users);
                w.u32(*files);
            }
            UdpMessage::GlobGetSources { files } => {
                for f in files {
                    w.hash(&f.0);
                }
            }
            UdpMessage::GlobFoundSources { file, sources } => {
                w.hash(&file.0);
                w.u8(sources.len().min(u8::MAX as usize) as u8);
                for s in sources.iter().take(u8::MAX as usize) {
                    w.u32(u32::from_le_bytes(s.ip.octets()));
                    w.u16(s.port);
                }
            }
        }
        w.into_bytes()
    }

    /// Decodes one datagram.
    pub fn decode(datagram: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(datagram);
        let marker = r.u8()?;
        if marker != PROTO_EDONKEY {
            return Err(ProtoError::BadProtocolByte(marker));
        }
        let opcode = r.u8()?;
        let msg = match opcode {
            opcodes::GLOB_STAT_REQ => UdpMessage::GlobStatReq { challenge: r.u32()? },
            opcodes::GLOB_STAT_RES => {
                UdpMessage::GlobStatRes { challenge: r.u32()?, users: r.u32()?, files: r.u32()? }
            }
            opcodes::GLOB_GET_SOURCES => {
                if !r.remaining().is_multiple_of(16) || r.remaining() == 0 {
                    return Err(ProtoError::Invalid(
                        "GLOB-GET-SOURCES payload must be 1+ file hashes",
                    ));
                }
                let mut files = Vec::with_capacity(r.remaining() / 16);
                while r.remaining() > 0 {
                    files.push(FileId(r.hash()?));
                }
                UdpMessage::GlobGetSources { files }
            }
            opcodes::GLOB_FOUND_SOURCES => {
                let file = FileId(r.hash()?);
                let n = r.u8()? as usize;
                let mut sources = Vec::with_capacity(n);
                for _ in 0..n {
                    let ip = Ipv4::from_octets(r.u32()?.to_le_bytes());
                    let port = r.u16()?;
                    sources.push(PeerAddr::new(ip, port));
                }
                UdpMessage::GlobFoundSources { file, sources }
            }
            other => {
                return Err(ProtoError::UnknownOpcode { opcode: other, context: "udp" });
            }
        };
        r.expect_end()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: &UdpMessage) -> UdpMessage {
        UdpMessage::decode(&m.encode()).expect("decode")
    }

    #[test]
    fn stat_round_trip() {
        let m = UdpMessage::GlobStatReq { challenge: 0xDEAD_BEEF };
        assert_eq!(round_trip(&m), m);
        let m =
            UdpMessage::GlobStatRes { challenge: 0xDEAD_BEEF, users: 1_234_567, files: 89_000_000 };
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn sources_round_trip() {
        let m = UdpMessage::GlobGetSources {
            files: vec![FileId::from_seed(b"a"), FileId::from_seed(b"b")],
        };
        assert_eq!(round_trip(&m), m);
        let m = UdpMessage::GlobFoundSources {
            file: FileId::from_seed(b"a"),
            sources: vec![
                PeerAddr::new(Ipv4::new(80, 1, 2, 3), 4662),
                PeerAddr::new(Ipv4::new(81, 4, 5, 6), 4672),
            ],
        };
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn bad_marker_rejected() {
        let mut d = UdpMessage::GlobStatReq { challenge: 1 }.encode();
        d[0] = 0x42;
        assert!(matches!(UdpMessage::decode(&d), Err(ProtoError::BadProtocolByte(0x42))));
    }

    #[test]
    fn ragged_source_query_rejected() {
        let mut d = UdpMessage::GlobGetSources { files: vec![FileId::from_seed(b"a")] }.encode();
        d.push(0xFF); // 17 payload bytes: not a whole number of hashes
        assert!(UdpMessage::decode(&d).is_err());
        // Empty query is also invalid.
        assert!(UdpMessage::decode(&[0xE3, opcodes::GLOB_GET_SOURCES]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut d = UdpMessage::GlobStatReq { challenge: 1 }.encode();
        d.push(0);
        assert!(matches!(UdpMessage::decode(&d), Err(ProtoError::TrailingBytes(1))));
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(matches!(
            UdpMessage::decode(&[0xE3, 0x11, 0, 0, 0, 0]),
            Err(ProtoError::UnknownOpcode { .. })
        ));
    }
}
