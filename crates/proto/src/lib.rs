//! # edonkey-proto
//!
//! A from-scratch implementation of the eDonkey/eMule wire protocol subset
//! needed by a measurement honeypot that must *pass for a normal peer*
//! (Allali, Latapy & Magnien, "Measurement of eDonkey Activity with
//! Distributed Honeypots", 2009, §III-B), after the unofficial protocol
//! specification of Kulbak & Bickson cited by the paper.
//!
//! The crate provides:
//!
//! * [`md4`] — the MD4 digest (RFC 1320), the primitive behind all eDonkey
//!   identifiers;
//! * [`ids`] — file hashes, user hashes, high/low client IDs, peer
//!   addresses;
//! * [`tags`] — the tag metadata system;
//! * [`messages`] — typed client↔server and client↔client messages;
//! * [`codec`] — length-prefixed TCP framing with an incremental stream
//!   decoder;
//! * [`parts`] — 9,728,000-byte part / 180 KB block geometry and content
//!   hashing (the mechanism that makes *random-content* honeypots slower to
//!   detect than *no-content* ones);
//! * [`search`] — the boolean keyword query trees of SEARCH-REQUEST, used
//!   by topic-targeted measurements;
//! * [`udp`] — the UDP side-protocol (global source queries and server
//!   status pings);
//! * [`control`] — the measurement platform's own control-plane framing
//!   (manager daemon ↔ honeypot agents): versioned, length-prefixed,
//!   CRC-checked frames, distinct from the eDonkey wire format.
//!
//! The same typed messages drive both the discrete-event simulation
//! (`edonkey-sim`) and the real-TCP loopback substrate (`edonkey-net`), so
//! the honeypot platform exercises one protocol implementation everywhere.

pub mod codec;
pub mod control;
pub mod error;
pub mod ids;
pub mod md4;
pub mod messages;
pub mod opcodes;
pub mod parts;
pub mod search;
pub mod tags;
pub mod udp;
pub mod wire;

pub use error::ProtoError;
pub use ids::{ClientId, FileId, Ipv4, PeerAddr, UserId};
pub use messages::{ClientServerMessage, PartRange, PeerMessage, PublishedFile};
pub use search::{Comparator, SearchExpr};
pub use udp::UdpMessage;
