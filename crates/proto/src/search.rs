//! The eDonkey search sub-protocol: boolean keyword query trees.
//!
//! A `SEARCH-REQUEST` carries a prefix-encoded boolean expression over
//! keywords and typed constraints; the server answers with a
//! `SEARCH-RESULT` carrying the matching published files.  The honeypot
//! platform itself never searches (it only advertises), but the *manager*
//! uses search to implement topic-targeted measurements — the paper's
//! future-work direction of "capturing all the activity regarding … a
//! specific keyword" (§V).
//!
//! Wire encoding (classic, after the eMule protocol spec):
//!
//! ```text
//! 0x00 0x00  AND  <expr> <expr>
//! 0x00 0x01  OR   <expr> <expr>
//! 0x00 0x02  NOT  <expr> <expr>   ("first minus second" — AND NOT)
//! 0x01       keyword   (u16 LE length + bytes)
//! 0x02       string constraint: value, then u16 name-length + tag name
//! 0x03       numeric constraint: u32 LE value, u8 comparator, tag name
//! ```

use serde::{Deserialize, Serialize};

use crate::error::ProtoError;
use crate::wire::{Reader, Writer};

/// Numeric comparators of `0x03` constraints.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Comparator {
    Equal,
    Greater,
    Less,
    GreaterOrEqual,
    LessOrEqual,
}

impl Comparator {
    fn to_wire(self) -> u8 {
        match self {
            Comparator::Equal => 0,
            Comparator::Greater => 1,
            Comparator::Less => 2,
            Comparator::GreaterOrEqual => 3,
            Comparator::LessOrEqual => 4,
        }
    }

    fn from_wire(v: u8) -> Result<Self, ProtoError> {
        Ok(match v {
            0 => Comparator::Equal,
            1 => Comparator::Greater,
            2 => Comparator::Less,
            3 => Comparator::GreaterOrEqual,
            4 => Comparator::LessOrEqual,
            _ => return Err(ProtoError::Invalid("unknown comparator")),
        })
    }

    /// Applies the comparator.
    pub fn matches(self, value: u64, bound: u64) -> bool {
        match self {
            Comparator::Equal => value == bound,
            Comparator::Greater => value > bound,
            Comparator::Less => value < bound,
            Comparator::GreaterOrEqual => value >= bound,
            Comparator::LessOrEqual => value <= bound,
        }
    }
}

/// A boolean search expression.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SearchExpr {
    /// Both sub-expressions must match.
    And(Box<SearchExpr>, Box<SearchExpr>),
    /// Either sub-expression matches.
    Or(Box<SearchExpr>, Box<SearchExpr>),
    /// The first matches and the second does not.
    AndNot(Box<SearchExpr>, Box<SearchExpr>),
    /// The keyword occurs in the file name (case-insensitive word match).
    Keyword(String),
    /// A string metadata constraint (`field == value`), e.g. type "Audio".
    StringTag { name: String, value: String },
    /// A numeric metadata constraint, e.g. `size >= 1_000_000`.
    NumericTag { name: String, comparator: Comparator, value: u32 },
}

impl SearchExpr {
    /// Convenience: a single-keyword query.
    pub fn keyword(word: impl Into<String>) -> Self {
        SearchExpr::Keyword(word.into())
    }

    /// Convenience: `self AND other`.
    pub fn and(self, other: SearchExpr) -> Self {
        SearchExpr::And(Box::new(self), Box::new(other))
    }

    /// Convenience: `self OR other`.
    pub fn or(self, other: SearchExpr) -> Self {
        SearchExpr::Or(Box::new(self), Box::new(other))
    }

    /// Convenience: `self AND NOT other`.
    pub fn and_not(self, other: SearchExpr) -> Self {
        SearchExpr::AndNot(Box::new(self), Box::new(other))
    }

    /// Builds an AND-of-keywords query the way real clients turn a typed
    /// phrase into an expression.
    pub fn phrase(words: &str) -> Option<Self> {
        let mut expr: Option<SearchExpr> = None;
        for w in words.split_whitespace() {
            let kw = SearchExpr::keyword(w.to_ascii_lowercase());
            expr = Some(match expr {
                None => kw,
                Some(e) => e.and(kw),
            });
        }
        expr
    }

    /// Serialises the expression (prefix order).
    pub fn encode(&self, w: &mut Writer) {
        match self {
            SearchExpr::And(a, b) => {
                w.u8(0x00);
                w.u8(0x00);
                a.encode(w);
                b.encode(w);
            }
            SearchExpr::Or(a, b) => {
                w.u8(0x00);
                w.u8(0x01);
                a.encode(w);
                b.encode(w);
            }
            SearchExpr::AndNot(a, b) => {
                w.u8(0x00);
                w.u8(0x02);
                a.encode(w);
                b.encode(w);
            }
            SearchExpr::Keyword(kw) => {
                w.u8(0x01);
                w.str16(kw);
            }
            SearchExpr::StringTag { name, value } => {
                w.u8(0x02);
                w.str16(value);
                w.str16(name);
            }
            SearchExpr::NumericTag { name, comparator, value } => {
                w.u8(0x03);
                w.u32(*value);
                w.u8(comparator.to_wire());
                w.str16(name);
            }
        }
    }

    /// Deserialises one expression.
    pub fn decode(r: &mut Reader) -> Result<Self, ProtoError> {
        Self::decode_bounded(r, 0)
    }

    fn decode_bounded(r: &mut Reader, depth: u32) -> Result<Self, ProtoError> {
        // Hostile inputs could nest operators arbitrarily deep and blow the
        // stack; real queries are a handful of levels.
        if depth > 64 {
            return Err(ProtoError::Invalid("search expression too deep"));
        }
        match r.u8()? {
            0x00 => {
                let op = r.u8()?;
                let a = Box::new(Self::decode_bounded(r, depth + 1)?);
                let b = Box::new(Self::decode_bounded(r, depth + 1)?);
                match op {
                    0x00 => Ok(SearchExpr::And(a, b)),
                    0x01 => Ok(SearchExpr::Or(a, b)),
                    0x02 => Ok(SearchExpr::AndNot(a, b)),
                    _ => Err(ProtoError::Invalid("unknown boolean operator")),
                }
            }
            0x01 => Ok(SearchExpr::Keyword(r.str16()?)),
            0x02 => {
                let value = r.str16()?;
                let name = r.str16()?;
                Ok(SearchExpr::StringTag { name, value })
            }
            0x03 => {
                let value = r.u32()?;
                let comparator = Comparator::from_wire(r.u8()?)?;
                let name = r.str16()?;
                Ok(SearchExpr::NumericTag { name, comparator, value })
            }
            _ => Err(ProtoError::Invalid("unknown search node type")),
        }
    }

    /// Evaluates the expression against a file's name, size and type.
    pub fn matches(&self, name: &str, size: u64, file_type: &str) -> bool {
        match self {
            SearchExpr::And(a, b) => {
                a.matches(name, size, file_type) && b.matches(name, size, file_type)
            }
            SearchExpr::Or(a, b) => {
                a.matches(name, size, file_type) || b.matches(name, size, file_type)
            }
            SearchExpr::AndNot(a, b) => {
                a.matches(name, size, file_type) && !b.matches(name, size, file_type)
            }
            SearchExpr::Keyword(kw) => {
                let kw = kw.to_ascii_lowercase();
                name.to_ascii_lowercase().split(|c: char| !c.is_alphanumeric()).any(|w| w == kw)
            }
            SearchExpr::StringTag { name: tag, value } => {
                tag == "type" && file_type.eq_ignore_ascii_case(value)
            }
            SearchExpr::NumericTag { name: tag, comparator, value } => {
                tag == "size" && comparator.matches(size, u64::from(*value))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(e: &SearchExpr) -> SearchExpr {
        let mut w = Writer::new();
        e.encode(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let back = SearchExpr::decode(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0);
        back
    }

    #[test]
    fn keyword_round_trip() {
        let e = SearchExpr::keyword("ubuntu");
        assert_eq!(round_trip(&e), e);
    }

    #[test]
    fn nested_boolean_round_trip() {
        let e = SearchExpr::keyword("linux")
            .and(SearchExpr::keyword("iso").or(SearchExpr::keyword("dvd")))
            .and_not(SearchExpr::keyword("beta"));
        assert_eq!(round_trip(&e), e);
    }

    #[test]
    fn constraints_round_trip() {
        let e = SearchExpr::StringTag { name: "type".into(), value: "Audio".into() }.and(
            SearchExpr::NumericTag {
                name: "size".into(),
                comparator: Comparator::GreaterOrEqual,
                value: 1_000_000,
            },
        );
        assert_eq!(round_trip(&e), e);
    }

    #[test]
    fn phrase_builds_left_deep_and() {
        let e = SearchExpr::phrase("Ubuntu Linux ISO").unwrap();
        assert!(e.matches("ubuntu.linux.8.10.iso", 1, ""));
        assert!(!e.matches("ubuntu.windows.iso", 1, ""));
        assert!(SearchExpr::phrase("  ").is_none());
    }

    #[test]
    fn matching_semantics() {
        let e = SearchExpr::keyword("live");
        assert!(e.matches("the.best.LIVE.concert.avi", 0, ""));
        assert!(!e.matches("alive.avi", 0, ""), "word match, not substring");

        let size = SearchExpr::NumericTag {
            name: "size".into(),
            comparator: Comparator::Less,
            value: 100,
        };
        assert!(size.matches("x", 99, ""));
        assert!(!size.matches("x", 100, ""));

        let ty = SearchExpr::StringTag { name: "type".into(), value: "Video".into() };
        assert!(ty.matches("x", 0, "video"));
        assert!(!ty.matches("x", 0, "audio"));

        let not = SearchExpr::keyword("concert").and_not(SearchExpr::keyword("bootleg"));
        assert!(not.matches("concert 2008", 0, ""));
        assert!(!not.matches("concert bootleg", 0, ""));
    }

    #[test]
    fn comparator_table() {
        assert!(Comparator::Equal.matches(5, 5));
        assert!(Comparator::Greater.matches(6, 5));
        assert!(Comparator::Less.matches(4, 5));
        assert!(Comparator::GreaterOrEqual.matches(5, 5));
        assert!(Comparator::LessOrEqual.matches(5, 5));
        assert!(!Comparator::Greater.matches(5, 5));
    }

    #[test]
    fn hostile_depth_rejected() {
        // 100 nested ANDs followed by garbage.
        let mut buf = Vec::new();
        for _ in 0..100 {
            buf.extend_from_slice(&[0x00, 0x00]);
        }
        let mut r = Reader::new(&buf);
        assert!(SearchExpr::decode(&mut r).is_err());
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        for cut in [0usize, 1, 2, 3] {
            let mut w = Writer::new();
            SearchExpr::keyword("abc").encode(&mut w);
            let buf = w.into_bytes();
            let mut r = Reader::new(&buf[..cut.min(buf.len() - 1)]);
            assert!(SearchExpr::decode(&mut r).is_err());
        }
    }
}
