//! The eDonkey *tag* system.
//!
//! Most variable metadata in eDonkey messages (file names, sizes, client
//! versions, ports…) travels as a list of tags.  A tag couples a *name* —
//! either a well-known one-byte special ID or a free-form string — with a
//! typed *value* (string or 32-bit integer in the classic protocol subset we
//! implement).
//!
//! Wire layout of one tag (classic, non-Lugdunum-compressed form):
//!
//! ```text
//! u8   type          (0x02 = string, 0x03 = u32)
//! u16  name length   (LE)
//! [u8] name bytes    (length 1 + a special ID byte for well-known tags)
//! value              (string: u16 LE length + bytes; u32: 4 bytes LE)
//! ```

use serde::{Deserialize, Serialize};

use crate::error::ProtoError;
use crate::wire::{Reader, Writer};

/// Well-known special tag IDs (subset used by the honeypot platform).
pub mod special {
    /// File or client name.
    pub const NAME: u8 = 0x01;
    /// File size in bytes.
    pub const SIZE: u8 = 0x02;
    /// File type string ("Audio", "Video", …).
    pub const FILE_TYPE: u8 = 0x03;
    /// File format / extension.
    pub const FORMAT: u8 = 0x04;
    /// Client version.
    pub const VERSION: u8 = 0x11;
    /// Client TCP port.
    pub const PORT: u8 = 0x0F;
    /// Number of sources the server knows for a published file.
    pub const SOURCES: u8 = 0x15;
    /// Free-form description.
    pub const DESCRIPTION: u8 = 0x0B;
    /// eMule extended version tag.
    pub const MULE_VERSION: u8 = 0xFB;
}

/// Wire type byte for string-valued tags.
pub const TAGTYPE_STRING: u8 = 0x02;
/// Wire type byte for u32-valued tags.
pub const TAGTYPE_U32: u8 = 0x03;

/// A tag name: either a one-byte well-known ID or a free-form string.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TagName {
    Special(u8),
    Named(String),
}

impl TagName {
    fn encode(&self, w: &mut Writer) {
        match self {
            TagName::Special(id) => {
                w.u16(1);
                w.u8(*id);
            }
            TagName::Named(s) => {
                w.u16(s.len() as u16);
                w.bytes(s.as_bytes());
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, ProtoError> {
        let len = r.u16()? as usize;
        let raw = r.take(len)?;
        if len == 1 {
            Ok(TagName::Special(raw[0]))
        } else {
            Ok(TagName::Named(String::from_utf8_lossy(raw).into_owned()))
        }
    }
}

/// A tag value (classic string / u32 subset).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TagValue {
    String(String),
    U32(u32),
}

/// One name/value metadata pair.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Tag {
    pub name: TagName,
    pub value: TagValue,
}

impl Tag {
    /// Convenience constructor for a special-ID string tag.
    pub fn string(id: u8, value: impl Into<String>) -> Self {
        Tag { name: TagName::Special(id), value: TagValue::String(value.into()) }
    }

    /// Convenience constructor for a special-ID integer tag.
    pub fn u32(id: u8, value: u32) -> Self {
        Tag { name: TagName::Special(id), value: TagValue::U32(value) }
    }

    /// Convenience constructor for a named string tag.
    pub fn named(name: impl Into<String>, value: impl Into<String>) -> Self {
        Tag { name: TagName::Named(name.into()), value: TagValue::String(value.into()) }
    }

    /// Serialises the tag.
    pub fn encode(&self, w: &mut Writer) {
        match &self.value {
            TagValue::String(s) => {
                w.u8(TAGTYPE_STRING);
                self.name.encode(w);
                w.u16(s.len() as u16);
                w.bytes(s.as_bytes());
            }
            TagValue::U32(v) => {
                w.u8(TAGTYPE_U32);
                self.name.encode(w);
                w.u32(*v);
            }
        }
    }

    /// Deserialises one tag.
    pub fn decode(r: &mut Reader) -> Result<Self, ProtoError> {
        let ty = r.u8()?;
        let name = TagName::decode(r)?;
        let value = match ty {
            TAGTYPE_STRING => {
                let len = r.u16()? as usize;
                TagValue::String(String::from_utf8_lossy(r.take(len)?).into_owned())
            }
            TAGTYPE_U32 => TagValue::U32(r.u32()?),
            other => return Err(ProtoError::UnknownTagType(other)),
        };
        Ok(Tag { name, value })
    }

    /// Serialises a length-prefixed tag list (u32 LE count, then tags).
    pub fn encode_list(tags: &[Tag], w: &mut Writer) {
        w.u32(tags.len() as u32);
        for t in tags {
            t.encode(w);
        }
    }

    /// Deserialises a length-prefixed tag list.
    pub fn decode_list(r: &mut Reader) -> Result<Vec<Tag>, ProtoError> {
        let n = r.u32()? as usize;
        // Each tag costs at least 4 bytes on the wire; reject counts that
        // could not possibly fit in the remaining payload (defensive cap
        // against hostile lengths).
        if n > r.remaining() / 4 + 1 {
            return Err(ProtoError::Truncated("tag list count exceeds payload"));
        }
        let mut tags = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            tags.push(Tag::decode(r)?);
        }
        Ok(tags)
    }
}

/// Looks up the first tag with the given special ID in a tag list.
pub fn find_special(tags: &[Tag], id: u8) -> Option<&TagValue> {
    tags.iter().find(|t| matches!(t.name, TagName::Special(x) if x == id)).map(|t| &t.value)
}

/// Extracts a string tag value by special ID.
pub fn get_string(tags: &[Tag], id: u8) -> Option<&str> {
    match find_special(tags, id) {
        Some(TagValue::String(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Extracts a u32 tag value by special ID.
pub fn get_u32(tags: &[Tag], id: u8) -> Option<u32> {
    match find_special(tags, id) {
        Some(TagValue::U32(v)) => Some(*v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(tags: &[Tag]) -> Vec<Tag> {
        let mut w = Writer::new();
        Tag::encode_list(tags, &mut w);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let out = Tag::decode_list(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0, "trailing bytes after tag list");
        out
    }

    #[test]
    fn round_trip_mixed_tags() {
        let tags = vec![
            Tag::string(special::NAME, "ubuntu-8.10-desktop-i386.iso"),
            Tag::u32(special::SIZE, 732_954_624),
            Tag::named("x-custom", "hello world"),
            Tag::u32(special::PORT, 4662),
        ];
        assert_eq!(round_trip(&tags), tags);
    }

    #[test]
    fn round_trip_empty_list() {
        assert_eq!(round_trip(&[]), Vec::<Tag>::new());
    }

    #[test]
    fn round_trip_empty_string_value() {
        let tags = vec![Tag::string(special::DESCRIPTION, "")];
        assert_eq!(round_trip(&tags), tags);
    }

    #[test]
    fn unknown_tag_type_rejected() {
        // A complete tag whose type byte is bogus: the name parses, then
        // the type is rejected.
        let mut w = Writer::new();
        w.u32(1);
        w.u8(0x99); // bogus type
        w.u16(1);
        w.u8(special::NAME);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(matches!(Tag::decode_list(&mut r), Err(ProtoError::UnknownTagType(0x99))));

        // Truncated right after the type byte: a truncation error, not a
        // type error (the name is read first).
        let mut w = Writer::new();
        w.u32(1);
        w.u8(0x99);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(matches!(Tag::decode_list(&mut r), Err(ProtoError::Truncated(_))));
    }

    #[test]
    fn hostile_count_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(Tag::decode_list(&mut r).is_err());
    }

    #[test]
    fn lookup_helpers() {
        let tags = vec![Tag::string(special::NAME, "song.mp3"), Tag::u32(special::SIZE, 5_000_000)];
        assert_eq!(get_string(&tags, special::NAME), Some("song.mp3"));
        assert_eq!(get_u32(&tags, special::SIZE), Some(5_000_000));
        assert_eq!(get_u32(&tags, special::NAME), None, "type mismatch yields None");
        assert_eq!(get_string(&tags, special::PORT), None);
    }

    #[test]
    fn special_name_one_byte_on_wire() {
        let mut w = Writer::new();
        Tag::u32(special::SIZE, 7).encode(&mut w);
        let buf = w.into_bytes();
        // type + namelen(2) + id(1) + u32(4)
        assert_eq!(buf.len(), 1 + 2 + 1 + 4);
        assert_eq!(buf[0], TAGTYPE_U32);
        assert_eq!(u16::from_le_bytes([buf[1], buf[2]]), 1);
        assert_eq!(buf[3], special::SIZE);
    }
}
