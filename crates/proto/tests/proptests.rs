//! Property-based tests of the protocol layer: arbitrary messages survive
//! an encode/decode round trip, arbitrary bytes never panic the decoder,
//! and MD4's incremental API agrees with the one-shot API under any
//! chunking.

use proptest::prelude::*;

use edonkey_proto::codec::{decode_frame, encode_frame, encode_peer_message, FrameDecoder};
use edonkey_proto::control::{
    decode_control_frame, decode_control_frame_capped, encode_control_frame, ControlDecoder,
};
use edonkey_proto::md4::{md4, Md4};
use edonkey_proto::messages::{PartRange, PeerMessage, PublishedFile};
use edonkey_proto::tags::{Tag, TagName, TagValue};
use edonkey_proto::wire::{Reader, Writer};
use edonkey_proto::{ClientId, ClientServerMessage, FileId, Ipv4, PeerAddr, UserId};

fn arb_hash() -> impl Strategy<Value = [u8; 16]> {
    any::<[u8; 16]>()
}

fn arb_tag() -> impl Strategy<Value = Tag> {
    let name = prop_oneof![
        any::<u8>().prop_map(TagName::Special),
        "[a-zA-Z0-9 _.-]{2,24}".prop_map(TagName::Named),
    ];
    let value = prop_oneof![
        any::<u32>().prop_map(TagValue::U32),
        "[\\PC]{0,40}".prop_map(TagValue::String),
    ];
    (name, value).prop_map(|(name, value)| Tag { name, value })
}

fn arb_published_file() -> impl Strategy<Value = PublishedFile> {
    (arb_hash(), any::<u32>(), any::<u16>(), prop::collection::vec(arb_tag(), 0..4)).prop_map(
        |(h, cid, port, tags)| PublishedFile {
            file_id: FileId(h),
            client_id: ClientId(cid),
            port,
            tags,
        },
    )
}

fn arb_peer_message() -> impl Strategy<Value = PeerMessage> {
    let hello = (arb_hash(), any::<u32>(), any::<u16>(), prop::collection::vec(arb_tag(), 0..5))
        .prop_map(|(u, c, p, tags)| PeerMessage::Hello {
            user_id: UserId(u),
            client_id: ClientId(c),
            port: p,
            tags,
        });
    let hello_answer =
        (arb_hash(), any::<u32>(), any::<u16>(), prop::collection::vec(arb_tag(), 0..5)).prop_map(
            |(u, c, p, tags)| PeerMessage::HelloAnswer {
                user_id: UserId(u),
                client_id: ClientId(c),
                port: p,
                tags,
            },
        );
    let start = arb_hash().prop_map(|h| PeerMessage::StartUpload { file_id: FileId(h) });
    let ranges = (any::<[u32; 3]>(), any::<[u32; 3]>()).prop_map(|(s, e)| {
        [PartRange::new(s[0], e[0]), PartRange::new(s[1], e[1]), PartRange::new(s[2], e[2])]
    });
    let request = (arb_hash(), ranges)
        .prop_map(|(h, ranges)| PeerMessage::RequestParts { file_id: FileId(h), ranges });
    let sending = (arb_hash(), any::<u32>(), prop::collection::vec(any::<u8>(), 0..512)).prop_map(
        |(h, start, data)| PeerMessage::SendingPart {
            file_id: FileId(h),
            start,
            end: start.wrapping_add(data.len() as u32),
            data,
        },
    );
    let shared = prop::collection::vec(arb_published_file(), 0..4)
        .prop_map(|files| PeerMessage::AskSharedFilesAnswer { files });
    let file_req = arb_hash().prop_map(|h| PeerMessage::FileRequest { file_id: FileId(h) });
    let file_ans = (arb_hash(), "[\\PC]{0,32}")
        .prop_map(|(h, name)| PeerMessage::FileRequestAnswer { file_id: FileId(h), name });
    prop_oneof![
        hello,
        hello_answer,
        start,
        Just(PeerMessage::AcceptUpload),
        any::<u32>().prop_map(|r| PeerMessage::QueueRank { rank: r }),
        request,
        sending,
        Just(PeerMessage::AskSharedFiles),
        shared,
        file_req,
        file_ans,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn peer_messages_round_trip(msg in arb_peer_message()) {
        // SENDING-PART with start+len overflowing u32 is unencodable by
        // construction; skip those rare cases.
        if let PeerMessage::SendingPart { start, end, data, .. } = &msg {
            prop_assume!(*end >= *start && (*end - *start) as usize == data.len());
        }
        let frame = encode_peer_message(&msg);
        let (raw, used) = decode_frame(&frame).unwrap();
        prop_assert_eq!(used, frame.len());
        let back = PeerMessage::decode_payload(raw.opcode, &raw.payload).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn client_server_messages_round_trip(
        h in arb_hash(),
        cid in any::<u32>(),
        port in any::<u16>(),
        users in any::<u32>(),
        files in prop::collection::vec(arb_published_file(), 0..4),
        sources in prop::collection::vec((any::<u32>(), any::<u16>()), 0..8),
    ) {
        let msgs = vec![
            (ClientServerMessage::LoginRequest {
                user_id: UserId(h), client_id: ClientId(cid), port, tags: vec![] }, false),
            (ClientServerMessage::OfferFiles { files }, false),
            (ClientServerMessage::GetSources { file_id: FileId(h) }, false),
            (ClientServerMessage::IdChange { client_id: ClientId(cid) }, true),
            (ClientServerMessage::ServerStatus { users, files: cid }, true),
            (ClientServerMessage::FoundSources {
                file_id: FileId(h),
                sources: sources.into_iter().map(|(ip, p)| PeerAddr::new(Ipv4(ip), p)).collect(),
            }, true),
        ];
        for (msg, from_server) in msgs {
            let mut w = Writer::new();
            msg.encode_payload(&mut w);
            let buf = w.into_bytes();
            let back = ClientServerMessage::decode_payload(msg.opcode(), &buf, from_server).unwrap();
            prop_assert_eq!(back, msg);
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_frame_decoder(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Errors are fine; panics are not.
        let _ = decode_frame(&bytes);
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        while let Ok(Some(frame)) = dec.next_frame() {
            let _ = PeerMessage::decode_payload(frame.opcode, &frame.payload);
            let _ = ClientServerMessage::decode_payload(frame.opcode, &frame.payload, true);
            let _ = ClientServerMessage::decode_payload(frame.opcode, &frame.payload, false);
        }
    }

    #[test]
    fn arbitrary_payloads_never_panic_message_decoders(
        opcode in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let _ = PeerMessage::decode_payload(opcode, &payload);
        let _ = ClientServerMessage::decode_payload(opcode, &payload, true);
        let _ = ClientServerMessage::decode_payload(opcode, &payload, false);
        let _ = Tag::decode_list(&mut Reader::new(&payload));
    }

    #[test]
    fn md4_incremental_agrees_with_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        splits in prop::collection::vec(1usize..64, 0..16),
    ) {
        let mut h = Md4::new();
        let mut pos = 0;
        for s in splits {
            if pos >= data.len() { break; }
            let end = (pos + s).min(data.len());
            h.update(&data[pos..end]);
            pos = end;
        }
        h.update(&data[pos..]);
        prop_assert_eq!(h.finalize(), md4(&data));
    }

    #[test]
    fn frames_survive_concatenated_streaming(msgs in prop::collection::vec(arb_peer_message(), 1..8), chunk in 1usize..64) {
        let mut msgs = msgs;
        msgs.retain(|m| !matches!(m, PeerMessage::SendingPart { start, end, data, .. }
            if *end < *start || (*end - *start) as usize != data.len()));
        prop_assume!(!msgs.is_empty());
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_peer_message(m));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.feed(piece);
            while let Some(raw) = dec.next_frame().unwrap() {
                got.push(PeerMessage::decode_payload(raw.opcode, &raw.payload).unwrap());
            }
        }
        prop_assert_eq!(got, msgs);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_control_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        cap in prop_oneof![Just(u32::MAX), 0u32..4096],
    ) {
        // Pure noise: errors and truncation are fine, panics are not.
        let _ = decode_control_frame(&bytes);
        let _ = decode_control_frame_capped(&bytes, cap);
        let mut dec = ControlDecoder::new();
        dec.set_max_payload(cap);
        dec.feed(&bytes);
        while let Ok(Some(_)) = dec.next_event() {}
    }

    #[test]
    fn mutated_control_frames_never_panic(
        opcode in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
        flips in prop::collection::vec((any::<u16>(), 1u8..=255), 1..8),
        chunk in 1usize..64,
    ) {
        // Random corruptions of a *valid* frame: exercises the header
        // checks, the CRC path, and the resync logic without ever
        // panicking, whatever byte gets hit.
        let mut frame = encode_control_frame(opcode, &payload);
        let len = frame.len();
        for (pos, mask) in flips {
            frame[pos as usize % len] ^= mask;
        }
        let mut dec = ControlDecoder::new();
        let mut fatal = false;
        for piece in frame.chunks(chunk) {
            if fatal {
                break; // fatal framing damage already surfaced: fine
            }
            dec.feed(piece);
            loop {
                match dec.next_event() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => {
                        fatal = true;
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn encode_frame_decode_frame_inverse(opcode in any::<u8>(), payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let frame = encode_frame(opcode, &payload);
        let (raw, used) = decode_frame(&frame).unwrap();
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(raw.opcode, opcode);
        prop_assert_eq!(raw.payload, payload);
    }
}
