//! The discrete-event engine.
//!
//! The engine owns the clock and the event queue; the *world* (everything
//! domain-specific: servers, peers, honeypots) is a single state machine
//! implementing [`World`].  Each step pops the earliest event and hands it
//! to the world together with a [`Scheduler`] restricted view through which
//! the handler may enqueue future events — never past ones, which the
//! scheduler enforces, keeping causality intact by construction.

use crate::event::EventQueue;
use crate::queue::PendingQueue;
use crate::time::SimTime;

/// Handle through which event handlers schedule future events.
///
/// Holds the queue as a trait object so [`World`] implementations stay
/// oblivious to which [`PendingQueue`] the engine runs on; only the push
/// goes through dynamic dispatch, pops remain statically dispatched in the
/// engine loop.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut (dyn PendingQueue<E> + 'a),
}

impl<'a, E> Scheduler<'a, E> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay_ms` milliseconds from now.
    pub fn in_ms(&mut self, delay_ms: u64, event: E) {
        self.queue.push(self.now.plus_millis(delay_ms), event);
    }

    /// Schedules `event` at an absolute instant, clamped to "not before
    /// now" so handlers cannot violate causality.
    pub fn at(&mut self, time: SimTime, event: E) {
        self.queue.push(time.max(self.now), event);
    }

    /// Number of pending events (diagnostics, back-pressure heuristics).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// The domain state machine driven by the engine.
pub trait World {
    /// Event payload type.
    type Event;

    /// Handles one event at its firing time.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// Outcome of a bounded run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The queue drained before the horizon.
    Drained,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (runaway protection).
    BudgetExhausted,
}

/// The discrete-event engine, generic over its pending-event queue.
///
/// `Q` defaults to the binary-heap [`EventQueue`], so existing callers
/// construct and use the engine exactly as before; scenarios that benefit
/// from the bucketed [`crate::CalendarQueue`] pass one to
/// [`Engine::with_queue`].
pub struct Engine<W: World, Q: PendingQueue<W::Event> = EventQueue<<W as World>::Event>> {
    now: SimTime,
    queue: Q,
    events_handled: u64,
    _world: std::marker::PhantomData<fn() -> W>,
}

impl<W: World> Engine<W> {
    pub fn new() -> Self {
        Self::with_queue(EventQueue::new())
    }
}

impl<W: World, Q: PendingQueue<W::Event>> Engine<W, Q> {
    /// Creates an engine driven by the given queue.
    pub fn with_queue(queue: Q) -> Self {
        Engine { now: SimTime::ZERO, queue, events_handled: 0, _world: std::marker::PhantomData }
    }

    /// Current simulation time (the timestamp of the last handled event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events handled so far.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Seeds an event before (or during) a run.
    pub fn schedule(&mut self, time: SimTime, event: W::Event) {
        self.queue.push(time.max(self.now), event);
    }

    /// Handles a single event; returns `false` when the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue yielded a past event");
        self.now = time;
        self.events_handled += 1;
        let mut sched = Scheduler { now: time, queue: &mut self.queue };
        world.handle(time, event, &mut sched);
        true
    }

    /// Runs until the queue drains or an event at/after `horizon` would
    /// fire.  Events scheduled exactly at the horizon are *not* executed, so
    /// `run_until(d32)` simulates the half-open interval `[0, d32)` — a
    /// 32-day measurement, matching how the paper buckets days.
    pub fn run_until(&mut self, world: &mut W, horizon: SimTime) -> RunOutcome {
        self.run_until_with_budget(world, horizon, u64::MAX)
    }

    /// [`Engine::run_until`] with an event budget as runaway protection.
    ///
    /// The loop pops first and parks the event back with
    /// [`PendingQueue::unpop`] when it lies at or past the horizon (or the
    /// budget is spent), rather than peeking before every pop: peek is
    /// O(1) on a heap but a scan on a calendar queue, and popping is the
    /// one operation both queues make fast.  `unpop` keeps the parked
    /// event at the front of its timestamp's FIFO class, so staged runs
    /// replay identically to the peek-based formulation.
    pub fn run_until_with_budget(
        &mut self,
        world: &mut W,
        horizon: SimTime,
        max_events: u64,
    ) -> RunOutcome {
        let mut handled = 0u64;
        // Span instrumentation keyed on *deterministic* quantities only
        // (sim-time and event counts), so the trace of a run is itself
        // reproducible — and recording it cannot perturb the simulation.
        crate::obs_event!(
            crate::obs::Level::Trace,
            "engine",
            "run_until_begin",
            now_ms = self.now.as_millis(),
            horizon_ms = horizon.as_millis(),
            events_handled = self.events_handled
        );
        loop {
            let Some((time, event)) = self.queue.pop() else {
                crate::obs_event!(
                    crate::obs::Level::Trace,
                    "engine",
                    "run_until_end",
                    outcome = "drained",
                    now_ms = self.now.as_millis(),
                    events_handled = self.events_handled,
                    span_events = handled
                );
                return RunOutcome::Drained;
            };
            if time >= horizon {
                self.queue.unpop(time, event);
                self.now = self.now.max(horizon);
                crate::obs_event!(
                    crate::obs::Level::Trace,
                    "engine",
                    "run_until_end",
                    outcome = "horizon",
                    now_ms = self.now.as_millis(),
                    events_handled = self.events_handled,
                    span_events = handled
                );
                return RunOutcome::HorizonReached;
            }
            if handled >= max_events {
                self.queue.unpop(time, event);
                crate::obs_event!(
                    crate::obs::Level::Trace,
                    "engine",
                    "run_until_end",
                    outcome = "budget",
                    now_ms = self.now.as_millis(),
                    events_handled = self.events_handled,
                    span_events = handled
                );
                return RunOutcome::BudgetExhausted;
            }
            debug_assert!(time >= self.now, "event queue yielded a past event");
            self.now = time;
            self.events_handled += 1;
            handled += 1;
            let mut sched = Scheduler { now: time, queue: &mut self.queue };
            world.handle(time, event, &mut sched);
        }
    }
}

impl<W: World> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: World, Q: PendingQueue<W::Event>> std::fmt::Debug for Engine<W, Q> {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("events_handled", &self.events_handled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records what fired and chains follow-up events.
    struct Recorder {
        fired: Vec<(SimTime, u32)>,
        chain_until: u32,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
            self.fired.push((now, ev));
            if ev < self.chain_until {
                sched.in_ms(10, ev + 1);
            }
        }
    }

    #[test]
    fn chained_events_advance_the_clock() {
        let mut world = Recorder { fired: vec![], chain_until: 5 };
        let mut engine = Engine::new();
        engine.schedule(SimTime(100), 0);
        assert_eq!(engine.run_until(&mut world, SimTime(10_000)), RunOutcome::Drained);
        assert_eq!(world.fired.len(), 6);
        assert_eq!(world.fired[0], (SimTime(100), 0));
        assert_eq!(world.fired[5], (SimTime(150), 5));
        assert_eq!(engine.events_handled(), 6);
    }

    #[test]
    fn horizon_is_exclusive() {
        let mut world = Recorder { fired: vec![], chain_until: 0 };
        let mut engine = Engine::new();
        engine.schedule(SimTime(10), 1);
        engine.schedule(SimTime(20), 2);
        let out = engine.run_until(&mut world, SimTime(20));
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(world.fired, vec![(SimTime(10), 1)]);
        assert_eq!(engine.pending(), 1, "the horizon event stays queued");
        assert_eq!(engine.now(), SimTime(20), "clock parks at the horizon");
    }

    #[test]
    fn budget_stops_runaway_worlds() {
        // chain_until = u32::MAX would never drain on its own.
        let mut world = Recorder { fired: vec![], chain_until: u32::MAX };
        let mut engine = Engine::new();
        engine.schedule(SimTime(0), 0);
        let out = engine.run_until_with_budget(&mut world, SimTime(u64::MAX), 1_000);
        assert_eq!(out, RunOutcome::BudgetExhausted);
        assert_eq!(world.fired.len(), 1_000);
    }

    #[test]
    fn scheduling_in_the_past_is_clamped_to_now() {
        struct PastScheduler {
            saw_second: Option<SimTime>,
        }
        impl World for PastScheduler {
            type Event = u8;
            fn handle(&mut self, now: SimTime, ev: u8, sched: &mut Scheduler<'_, u8>) {
                match ev {
                    0 => sched.at(SimTime(0), 1), // "yesterday"
                    1 => self.saw_second = Some(now),
                    _ => unreachable!(),
                }
            }
        }
        let mut world = PastScheduler { saw_second: None };
        let mut engine = Engine::new();
        engine.schedule(SimTime(500), 0);
        engine.run_until(&mut world, SimTime(1_000));
        assert_eq!(world.saw_second, Some(SimTime(500)));
    }

    #[test]
    fn heap_calendar_and_wheel_engines_fire_identically() {
        use crate::calendar::CalendarQueue;
        use crate::wheel::TimingWheel;

        let mut on_heap = Recorder { fired: vec![], chain_until: 40 };
        let mut heap_engine = Engine::new();
        heap_engine.schedule(SimTime(3), 0);
        heap_engine.schedule(SimTime(3), 7);
        let heap_out = heap_engine.run_until(&mut on_heap, SimTime(250));

        let mut on_cal = Recorder { fired: vec![], chain_until: 40 };
        let mut cal_engine = Engine::with_queue(CalendarQueue::new(8, 25));
        cal_engine.schedule(SimTime(3), 0);
        cal_engine.schedule(SimTime(3), 7);
        let cal_out = cal_engine.run_until(&mut on_cal, SimTime(250));

        let mut on_wheel = Recorder { fired: vec![], chain_until: 40 };
        let mut wheel_engine = Engine::with_queue(TimingWheel::new());
        wheel_engine.schedule(SimTime(3), 0);
        wheel_engine.schedule(SimTime(3), 7);
        let wheel_out = wheel_engine.run_until(&mut on_wheel, SimTime(250));

        assert_eq!(heap_out, cal_out);
        assert_eq!(heap_out, wheel_out);
        assert_eq!(on_heap.fired, on_cal.fired);
        assert_eq!(on_heap.fired, on_wheel.fired);
        assert_eq!(heap_engine.now(), cal_engine.now());
        assert_eq!(heap_engine.now(), wheel_engine.now());
        assert_eq!(heap_engine.pending(), cal_engine.pending());
        assert_eq!(heap_engine.pending(), wheel_engine.pending());
        assert_eq!(heap_engine.events_handled(), cal_engine.events_handled());
        assert_eq!(heap_engine.events_handled(), wheel_engine.events_handled());
    }

    #[test]
    fn budget_resume_preserves_tie_order() {
        // Exhaust the budget in the middle of a same-timestamp tie class,
        // then resume: the parked event must still fire before its peers.
        let mut world = Recorder { fired: vec![], chain_until: 0 };
        let mut engine = Engine::new();
        for i in 0..4 {
            engine.schedule(SimTime(10), i);
        }
        let out = engine.run_until_with_budget(&mut world, SimTime(100), 2);
        assert_eq!(out, RunOutcome::BudgetExhausted);
        engine.run_until(&mut world, SimTime(100));
        let order: Vec<u32> = world.fired.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_engine_drains_immediately() {
        let mut world = Recorder { fired: vec![], chain_until: 0 };
        let mut engine = Engine::new();
        assert_eq!(engine.run_until(&mut world, SimTime(10)), RunOutcome::Drained);
        assert!(!engine.step(&mut world));
    }
}
