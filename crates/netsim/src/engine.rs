//! The discrete-event engine.
//!
//! The engine owns the clock and the event queue; the *world* (everything
//! domain-specific: servers, peers, honeypots) is a single state machine
//! implementing [`World`].  Each step pops the earliest event and hands it
//! to the world together with a [`Scheduler`] restricted view through which
//! the handler may enqueue future events — never past ones, which the
//! scheduler enforces, keeping causality intact by construction.

use crate::event::EventQueue;
use crate::time::SimTime;

/// Handle through which event handlers schedule future events.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay_ms` milliseconds from now.
    pub fn in_ms(&mut self, delay_ms: u64, event: E) {
        self.queue.push(self.now.plus_millis(delay_ms), event);
    }

    /// Schedules `event` at an absolute instant, clamped to "not before
    /// now" so handlers cannot violate causality.
    pub fn at(&mut self, time: SimTime, event: E) {
        self.queue.push(time.max(self.now), event);
    }

    /// Number of pending events (diagnostics, back-pressure heuristics).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// The domain state machine driven by the engine.
pub trait World {
    /// Event payload type.
    type Event;

    /// Handles one event at its firing time.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// Outcome of a bounded run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The queue drained before the horizon.
    Drained,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (runaway protection).
    BudgetExhausted,
}

/// The discrete-event engine.
pub struct Engine<W: World> {
    now: SimTime,
    queue: EventQueue<W::Event>,
    events_handled: u64,
}

impl<W: World> Engine<W> {
    pub fn new() -> Self {
        Engine { now: SimTime::ZERO, queue: EventQueue::new(), events_handled: 0 }
    }

    /// Current simulation time (the timestamp of the last handled event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events handled so far.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Seeds an event before (or during) a run.
    pub fn schedule(&mut self, time: SimTime, event: W::Event) {
        self.queue.push(time.max(self.now), event);
    }

    /// Handles a single event; returns `false` when the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue yielded a past event");
        self.now = time;
        self.events_handled += 1;
        let mut sched = Scheduler { now: time, queue: &mut self.queue };
        world.handle(time, event, &mut sched);
        true
    }

    /// Runs until the queue drains or an event at/after `horizon` would
    /// fire.  Events scheduled exactly at the horizon are *not* executed, so
    /// `run_until(d32)` simulates the half-open interval `[0, d32)` — a
    /// 32-day measurement, matching how the paper buckets days.
    pub fn run_until(&mut self, world: &mut W, horizon: SimTime) -> RunOutcome {
        self.run_until_with_budget(world, horizon, u64::MAX)
    }

    /// [`Engine::run_until`] with an event budget as runaway protection.
    pub fn run_until_with_budget(
        &mut self,
        world: &mut W,
        horizon: SimTime,
        max_events: u64,
    ) -> RunOutcome {
        let mut handled = 0u64;
        loop {
            match self.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t >= horizon => {
                    self.now = self.now.max(horizon);
                    return RunOutcome::HorizonReached;
                }
                Some(_) => {}
            }
            if handled >= max_events {
                return RunOutcome::BudgetExhausted;
            }
            self.step(world);
            handled += 1;
        }
    }
}

impl<W: World> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: World> std::fmt::Debug for Engine<W> {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("events_handled", &self.events_handled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records what fired and chains follow-up events.
    struct Recorder {
        fired: Vec<(SimTime, u32)>,
        chain_until: u32,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
            self.fired.push((now, ev));
            if ev < self.chain_until {
                sched.in_ms(10, ev + 1);
            }
        }
    }

    #[test]
    fn chained_events_advance_the_clock() {
        let mut world = Recorder { fired: vec![], chain_until: 5 };
        let mut engine = Engine::new();
        engine.schedule(SimTime(100), 0);
        assert_eq!(engine.run_until(&mut world, SimTime(10_000)), RunOutcome::Drained);
        assert_eq!(world.fired.len(), 6);
        assert_eq!(world.fired[0], (SimTime(100), 0));
        assert_eq!(world.fired[5], (SimTime(150), 5));
        assert_eq!(engine.events_handled(), 6);
    }

    #[test]
    fn horizon_is_exclusive() {
        let mut world = Recorder { fired: vec![], chain_until: 0 };
        let mut engine = Engine::new();
        engine.schedule(SimTime(10), 1);
        engine.schedule(SimTime(20), 2);
        let out = engine.run_until(&mut world, SimTime(20));
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(world.fired, vec![(SimTime(10), 1)]);
        assert_eq!(engine.pending(), 1, "the horizon event stays queued");
        assert_eq!(engine.now(), SimTime(20), "clock parks at the horizon");
    }

    #[test]
    fn budget_stops_runaway_worlds() {
        // chain_until = u32::MAX would never drain on its own.
        let mut world = Recorder { fired: vec![], chain_until: u32::MAX };
        let mut engine = Engine::new();
        engine.schedule(SimTime(0), 0);
        let out = engine.run_until_with_budget(&mut world, SimTime(u64::MAX), 1_000);
        assert_eq!(out, RunOutcome::BudgetExhausted);
        assert_eq!(world.fired.len(), 1_000);
    }

    #[test]
    fn scheduling_in_the_past_is_clamped_to_now() {
        struct PastScheduler {
            saw_second: Option<SimTime>,
        }
        impl World for PastScheduler {
            type Event = u8;
            fn handle(&mut self, now: SimTime, ev: u8, sched: &mut Scheduler<'_, u8>) {
                match ev {
                    0 => sched.at(SimTime(0), 1), // "yesterday"
                    1 => self.saw_second = Some(now),
                    _ => unreachable!(),
                }
            }
        }
        let mut world = PastScheduler { saw_second: None };
        let mut engine = Engine::new();
        engine.schedule(SimTime(500), 0);
        engine.run_until(&mut world, SimTime(1_000));
        assert_eq!(world.saw_second, Some(SimTime(500)));
    }

    #[test]
    fn empty_engine_drains_immediately() {
        let mut world = Recorder { fired: vec![], chain_until: 0 };
        let mut engine = Engine::new();
        assert_eq!(engine.run_until(&mut world, SimTime(10)), RunOutcome::Drained);
        assert!(!engine.step(&mut world));
    }
}
