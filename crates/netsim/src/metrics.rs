//! Lightweight time-series recording.
//!
//! Experiments need per-hour and per-day bucketed counts (Figs. 2–9) and
//! cumulative-distinct curves.  [`BucketSeries`] accumulates counts into
//! fixed-width time buckets; [`FirstSeen`] tracks when each key was first
//! observed, from which cumulative-distinct and new-per-bucket series
//! derive.

use std::collections::HashMap;
use std::hash::Hash;

use serde::Serialize;

use crate::time::SimTime;

/// Counts events in fixed-width time buckets.
#[derive(Clone, Debug, Serialize)]
pub struct BucketSeries {
    /// Bucket width in milliseconds.
    bucket_ms: u64,
    /// Dense counts, index = bucket number.
    counts: Vec<u64>,
}

impl BucketSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    /// If `bucket_ms == 0`.
    pub fn new(bucket_ms: u64) -> Self {
        assert!(bucket_ms > 0, "bucket width must be positive");
        BucketSeries { bucket_ms, counts: Vec::new() }
    }

    /// Per-hour buckets.
    pub fn hourly() -> Self {
        Self::new(crate::time::MS_PER_HOUR)
    }

    /// Per-day buckets.
    pub fn daily() -> Self {
        Self::new(crate::time::MS_PER_DAY)
    }

    /// Records one event at `t`.
    pub fn record(&mut self, t: SimTime) {
        self.add(t, 1);
    }

    /// Records `n` events at `t`.
    pub fn add(&mut self, t: SimTime, n: u64) {
        let idx = (t.as_millis() / self.bucket_ms) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
    }

    /// The count in bucket `idx` (0 beyond the recorded range).
    pub fn get(&self, idx: usize) -> u64 {
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// All buckets, padded with zeros up to `min_len` (so a quiet final day
    /// still appears in reports).
    pub fn to_vec(&self, min_len: usize) -> Vec<u64> {
        let mut v = self.counts.clone();
        if v.len() < min_len {
            v.resize(min_len, 0);
        }
        v
    }

    /// Cumulative counts bucket by bucket.
    pub fn cumulative(&self, min_len: usize) -> Vec<u64> {
        let mut acc = 0u64;
        self.to_vec(min_len)
            .into_iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Sum over all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of non-empty trailing-trimmed buckets.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Tracks the first observation time of each key.
#[derive(Clone, Debug)]
pub struct FirstSeen<K: Eq + Hash> {
    first: HashMap<K, SimTime>,
}

impl<K: Eq + Hash> Default for FirstSeen<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash> FirstSeen<K> {
    pub fn new() -> Self {
        FirstSeen { first: HashMap::new() }
    }

    /// Records an observation; returns `true` the first time `key` is seen.
    pub fn observe(&mut self, key: K, t: SimTime) -> bool {
        match self.first.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(t);
                true
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                // Out-of-order merges (multi-honeypot logs) keep the
                // earliest time.
                if t < *e.get() {
                    e.insert(t);
                }
                false
            }
        }
    }

    /// Number of distinct keys observed.
    pub fn distinct(&self) -> usize {
        self.first.len()
    }

    /// First-seen time of a key.
    pub fn first_seen(&self, key: &K) -> Option<SimTime> {
        self.first.get(key).copied()
    }

    /// Number of *new* keys per bucket of `bucket_ms`, over at least
    /// `min_len` buckets.
    pub fn new_per_bucket(&self, bucket_ms: u64, min_len: usize) -> Vec<u64> {
        assert!(bucket_ms > 0);
        let mut counts = vec![
            0u64;
            self.first
                .values()
                .map(|t| (t.as_millis() / bucket_ms) as usize + 1)
                .max()
                .unwrap_or(0)
                .max(min_len)
        ];
        for t in self.first.values() {
            counts[(t.as_millis() / bucket_ms) as usize] += 1;
        }
        counts
    }

    /// Cumulative distinct keys per bucket.
    pub fn cumulative_per_bucket(&self, bucket_ms: u64, min_len: usize) -> Vec<u64> {
        let mut acc = 0;
        self.new_per_bucket(bucket_ms, min_len)
            .into_iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Iterates over `(key, first_seen)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, SimTime)> {
        self.first.iter().map(|(k, t)| (k, *t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MS_PER_DAY, MS_PER_HOUR};

    #[test]
    fn bucket_series_accumulates() {
        let mut s = BucketSeries::hourly();
        s.record(SimTime::from_mins(10));
        s.record(SimTime::from_mins(50));
        s.record(SimTime::from_mins(70));
        assert_eq!(s.get(0), 2);
        assert_eq!(s.get(1), 1);
        assert_eq!(s.get(2), 0);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn bucket_series_padding_and_cumulative() {
        let mut s = BucketSeries::daily();
        s.add(SimTime::from_days(1), 5);
        let v = s.to_vec(4);
        assert_eq!(v, vec![0, 5, 0, 0]);
        assert_eq!(s.cumulative(4), vec![0, 5, 5, 5]);
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_bucket_rejected() {
        let _ = BucketSeries::new(0);
    }

    #[test]
    fn first_seen_counts_each_key_once() {
        let mut fs = FirstSeen::new();
        assert!(fs.observe("peer-1", SimTime::from_hours(1)));
        assert!(!fs.observe("peer-1", SimTime::from_hours(5)));
        assert!(fs.observe("peer-2", SimTime::from_hours(30)));
        assert_eq!(fs.distinct(), 2);
        assert_eq!(fs.first_seen(&"peer-1"), Some(SimTime::from_hours(1)));
    }

    #[test]
    fn out_of_order_merge_keeps_earliest() {
        let mut fs = FirstSeen::new();
        fs.observe(7u32, SimTime::from_hours(10));
        fs.observe(7u32, SimTime::from_hours(2));
        assert_eq!(fs.first_seen(&7), Some(SimTime::from_hours(2)));
    }

    #[test]
    fn new_and_cumulative_per_day() {
        let mut fs = FirstSeen::new();
        fs.observe(1, SimTime::from_hours(1)); // day 0
        fs.observe(2, SimTime::from_hours(30)); // day 1
        fs.observe(3, SimTime::from_hours(31)); // day 1
        assert_eq!(fs.new_per_bucket(MS_PER_DAY, 3), vec![1, 2, 0]);
        assert_eq!(fs.cumulative_per_bucket(MS_PER_DAY, 3), vec![1, 3, 3]);
        assert_eq!(fs.new_per_bucket(MS_PER_HOUR, 0).len(), 32);
    }

    #[test]
    fn empty_first_seen() {
        let fs: FirstSeen<u8> = FirstSeen::new();
        assert_eq!(fs.distinct(), 0);
        assert_eq!(fs.new_per_bucket(MS_PER_DAY, 2), vec![0, 0]);
    }
}
