//! The queue abstraction behind the engine.
//!
//! Two implementations exist — the binary-heap [`crate::event::EventQueue`]
//! and the bucketed [`crate::calendar::CalendarQueue`] — with identical
//! observable semantics: pops are monotone in time and FIFO among equal
//! timestamps.  [`crate::Engine`] is generic over this trait so a scenario
//! can pick whichever wins on its scheduling pattern without touching any
//! world code; the equivalence is asserted by property tests and by a
//! byte-identical-log determinism test in the simulator crate.

use crate::time::SimTime;

/// A time-ordered pending-event queue with stable FIFO tie-breaking.
pub trait PendingQueue<E> {
    /// Schedules `payload` to fire at `time`.
    ///
    /// Implementations may require `time` to be no earlier than the last
    /// popped event (the engine's causality clamp guarantees this).
    fn push(&mut self, time: SimTime, payload: E);

    /// Removes and returns the earliest event; FIFO among equal times.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// Reinserts an event that was just popped as the global minimum and
    /// not handled.  Unlike [`PendingQueue::push`], the event keeps its
    /// place at the *front* of its timestamp's FIFO class, so a later pop
    /// yields it before any other pending event with the same time.  The
    /// engine uses this to park the first at-or-past-horizon event back in
    /// the queue without disturbing replay determinism.
    fn unpop(&mut self, time: SimTime, payload: E);

    /// Number of pending events.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed (diagnostics).
    fn pushed_total(&self) -> u64;
}
