//! Sampling distributions used by the synthetic eDonkey world.
//!
//! * [`exponential`] / [`poisson`] — inter-arrival times and event counts of
//!   the peer arrival process;
//! * [`normal`] / [`log_normal`] — file sizes (heavy-tailed mixture around
//!   the ~330 MB mean implied by Table I's 9 TB / 28 k files);
//! * [`Zipf`] — file popularity (the paper's Figs. 11–12 show a strongly
//!   skewed per-file peer count: best file 13,373 peers, worst 2);
//! * [`DiurnalCurve`] — the day/night activity modulation behind Fig. 4.

use serde::{Deserialize, Serialize};

use crate::rng::Rng;

/// Exponential variate with the given rate (events per unit time).
///
/// # Panics
/// If `rate` is not strictly positive and finite.
pub fn exponential(rng: &mut Rng, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "exponential rate must be positive");
    -rng.f64_open().ln() / rate
}

/// Poisson variate with mean `lambda`.
///
/// Uses Knuth's product method for small means and a (rounded, clamped)
/// normal approximation for large ones — exactly accurate enough for
/// populating per-interval arrival counts.
pub fn poisson(rng: &mut Rng, lambda: f64) -> u64 {
    assert!(lambda >= 0.0 && lambda.is_finite(), "poisson mean must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.f64_open();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
    let x = normal(rng, lambda, lambda.sqrt());
    x.round().max(0.0) as u64
}

/// Normal variate via Box–Muller.
pub fn normal(rng: &mut Rng, mean: f64, std_dev: f64) -> f64 {
    let u1 = rng.f64_open();
    let u2 = rng.f64();
    let mag = (-2.0 * u1.ln()).sqrt();
    mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal variate parameterised by the mean/σ of the underlying normal.
pub fn log_normal(rng: &mut Rng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// A Zipf-like discrete distribution over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ 1 / (k + 1)^s`.
///
/// Sampling is by binary search over the precomputed cumulative weights —
/// exact, O(log n) per draw, and cheap to build even for catalogs of
/// hundreds of thousands of files.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution.
    ///
    /// # Panics
    /// If `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    pub fn is_empty(&self) -> bool {
        false // guaranteed non-empty by construction
    }

    /// Relative weight of rank `k` (normalised so all weights sum to 1).
    pub fn probability(&self, k: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        (self.cumulative[k] - prev) / total
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.f64() * total;
        // partition_point returns the first rank whose cumulative weight
        // exceeds x.
        self.cumulative.partition_point(|&c| c <= x).min(self.cumulative.len() - 1)
    }
}

/// Day/night activity modulation.
///
/// The paper observes that HELLO arrivals follow the European / North
/// African daily rhythm: maxima in local daytime, minima at night (Fig. 4).
/// We model the rate multiplier as a raised cosine with configurable
/// amplitude, peaking at `peak_hour` local time, averaging 1.0 over a day so
/// it scales rates without changing daily totals.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DiurnalCurve {
    /// Hour of local day at which activity peaks (e.g. 15 ≈ mid-afternoon).
    pub peak_hour: f64,
    /// Peak-to-mean excess in `[0, 1)`: multiplier spans `1 ± amplitude`.
    pub amplitude: f64,
}

impl DiurnalCurve {
    /// The calibration used by the experiments: peak at 15:00, amplitude
    /// 0.75 (day ≈ 7× the nightly trough, matching Fig. 4's swing).
    pub fn european() -> Self {
        DiurnalCurve { peak_hour: 15.0, amplitude: 0.75 }
    }

    /// A flat curve (multiplier constantly 1) — ablation control.
    pub fn flat() -> Self {
        DiurnalCurve { peak_hour: 0.0, amplitude: 0.0 }
    }

    /// Rate multiplier at an hour-of-day (fractional hours accepted).
    pub fn multiplier_at_hour(&self, hour_of_day: f64) -> f64 {
        let phase = (hour_of_day - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        1.0 + self.amplitude * phase.cos()
    }

    /// Rate multiplier at a simulation instant, given the local clock offset
    /// (simulation hour 0 == local `offset_hours` o'clock).
    pub fn multiplier(&self, t: crate::time::SimTime, offset_hours: f64) -> f64 {
        let hour = (t.as_hours() + offset_hours) % 24.0;
        self.multiplier_at_hour(hour)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from(0xFEED)
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut r, 3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_branch() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut r, 500.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 500.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        assert_eq!(poisson(&mut rng(), 0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(log_normal(&mut r, 2.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn zipf_rank_zero_most_likely() {
        let z = Zipf::new(1_000, 1.0);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(1) > z.probability(100));
        let total: f64 = (0..z.len()).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_sampling_matches_probabilities() {
        let z = Zipf::new(50, 1.2);
        let mut r = rng();
        let n = 200_000;
        let mut counts = [0u32; 50];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for k in [0usize, 1, 5, 20] {
            let got = counts[k] as f64 / n as f64;
            let want = z.probability(k);
            assert!((got - want).abs() < 0.01 + want * 0.1, "rank {k}: got {got}, want {want}");
        }
        assert!(counts[0] > counts[10], "head must dominate tail");
    }

    #[test]
    fn zipf_uniform_when_exponent_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.probability(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn diurnal_average_is_one() {
        let c = DiurnalCurve::european();
        let avg: f64 =
            (0..2400).map(|i| c.multiplier_at_hour(i as f64 / 100.0)).sum::<f64>() / 2400.0;
        assert!((avg - 1.0).abs() < 1e-6, "avg {avg}");
    }

    #[test]
    fn diurnal_peak_and_trough() {
        let c = DiurnalCurve::european();
        assert!(c.multiplier_at_hour(15.0) > 1.7);
        assert!(c.multiplier_at_hour(3.0) < 0.3);
        let f = DiurnalCurve::flat();
        assert_eq!(f.multiplier_at_hour(4.0), 1.0);
    }

    #[test]
    fn diurnal_respects_offset() {
        let c = DiurnalCurve::european();
        let t = crate::time::SimTime::from_hours(0);
        assert!(
            (c.multiplier(t, 15.0) - c.multiplier_at_hour(15.0)).abs() < 1e-12,
            "offset shifts the local clock"
        );
    }
}
