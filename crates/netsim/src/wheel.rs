//! A *hierarchical timing wheel* (Varghese & Lauck, SOSP 1987) — the third
//! [`crate::queue::PendingQueue`] implementation, built for simulations
//! whose pending-event count reaches millions.
//!
//! Five levels of 64 slots each cover deltas up to 2³⁰ ms (~12 days): an
//! event `delta` ms ahead lands at the lowest level whose span contains
//! it, in the slot addressed by its *absolute* timestamp.  Level 0 slots
//! are 1 ms wide, so every entry in a slot shares one timestamp and pops
//! are O(1); higher levels hold events too far out to matter yet.  When
//! the cursor enters a new window, that window's slot at each coarser
//! level is *cascaded* — drained and re-inserted, where its entries fall
//! into finer levels — so sorting work is deferred until an event is
//! nearly due and is O(1) amortised per event.  Events beyond the whole
//! span wait in an overflow list that is re-leveled once per wheel lap.
//!
//! Versus the heap's O(log n) sift per operation and the calendar's
//! single-width buckets (whose cursor walks empty buckets at fixed 1-lap
//! granularity), the wheel keeps both push and pop amortised O(1) with a
//! scheduling horizon that adapts per event — the profile that wins when
//! a million peers each keep a handful of timers.
//!
//! Semantics match [`crate::event::EventQueue`] and
//! [`crate::calendar::CalendarQueue`] exactly: pops are monotone in time,
//! FIFO among equal timestamps, and [`TimingWheel::unpop`] re-fronts a
//! just-popped event.  `seq` is signed like the calendar's: pushes count
//! up from zero, unpops count down from −1.  Property tests in
//! `tests/proptests.rs` assert three-way agreement on arbitrary
//! schedules.

use crate::queue::PendingQueue;
use crate::time::SimTime;

/// log2 of the slot count per level.
const SHIFT: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SHIFT;
const MASK: u64 = SLOTS as u64 - 1;
/// Number of wheel levels.
const LEVELS: usize = 5;
/// Width in ms of one slot at level `k`.
const fn width(k: usize) -> u64 {
    1 << (SHIFT * k as u32)
}
/// Horizon in ms covered by all levels; deltas at or past this overflow.
const SPAN: u64 = 1 << (SHIFT * LEVELS as u32);

/// One stored event; same signed-`seq` idiom as the calendar queue.
struct Entry<E> {
    time: SimTime,
    seq: i64,
    payload: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (SimTime, i64) {
        (self.time, self.seq)
    }
}

/// A five-level, 64-slot-per-level hierarchical timing wheel.
pub struct TimingWheel<E> {
    /// `levels[k][s]` holds entries whose delta was in
    /// `[width(k), width(k+1))` at insertion, at slot
    /// `s = (time / width(k)) % 64`.  Only the level-0 slot under the
    /// cursor is kept sorted (descending by `(time, seq)`, minimum at the
    /// back); everything else is unsorted append.
    levels: Vec<Vec<Vec<Entry<E>>>>,
    /// Entries per level, so `pop` can skip empty levels wholesale.
    counts: [usize; LEVELS],
    /// Events scheduled at or past `now + SPAN`; re-leveled on each wheel
    /// lap (or directly, when the wheels drain first).
    overflow: Vec<Entry<E>>,
    /// The wheel's current time: the timestamp of the last popped event.
    /// Pushes earlier than this violate causality and panic.
    now: u64,
    /// Whether the level-0 slot under the cursor has been sorted since
    /// `now` last changed.
    cursor_sorted: bool,
    len: usize,
    next_seq: i64,
    front_seq: i64,
}

/// The lowest level whose span contains `delta` (which must be `< SPAN`).
fn level_for(delta: u64) -> usize {
    if delta == 0 {
        0
    } else {
        ((63 - delta.leading_zeros()) / SHIFT) as usize
    }
}

impl<E> TimingWheel<E> {
    pub fn new() -> Self {
        TimingWheel {
            levels: (0..LEVELS).map(|_| (0..SLOTS).map(|_| Vec::new()).collect()).collect(),
            counts: [0; LEVELS],
            overflow: Vec::new(),
            now: 0,
            cursor_sorted: false,
            len: 0,
            next_seq: 0,
            front_seq: 0,
        }
    }

    /// The wheel needs no workload-specific sizing (its horizon adapts per
    /// event), but the constructor mirrors
    /// [`crate::calendar::CalendarQueue::for_simulation`] so scenario
    /// dispatch reads uniformly.
    pub fn for_simulation() -> Self {
        TimingWheel::new()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever pushed (diagnostics).
    pub fn pushed_total(&self) -> u64 {
        self.next_seq as u64
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    /// If `time` precedes the last popped timestamp (causality).
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Entry { time, seq, payload });
    }

    /// Reinserts a just-popped minimum at the front of its FIFO class
    /// (see [`crate::queue::PendingQueue::unpop`]).
    pub fn unpop(&mut self, time: SimTime, payload: E) {
        self.front_seq -= 1;
        let seq = self.front_seq;
        self.insert(Entry { time, seq, payload });
    }

    fn insert(&mut self, entry: Entry<E>) {
        assert!(
            entry.time.as_millis() >= self.now,
            "event scheduled before the wheel's current time"
        );
        let t = entry.time.as_millis();
        let delta = t - self.now;
        if delta >= SPAN {
            self.overflow.push(entry);
        } else {
            let k = level_for(delta);
            let slot = ((t >> (SHIFT * k as u32)) & MASK) as usize;
            let bucket = &mut self.levels[k][slot];
            if t == self.now && self.cursor_sorted {
                // The cursor slot (all entries share timestamp `now`) is
                // sorted descending; binary-insert to keep the minimum at
                // the back, exactly like the calendar's cursor bucket.
                let key = entry.key();
                let pos = bucket.partition_point(|e| e.key() > key);
                bucket.insert(pos, entry);
            } else {
                bucket.push(entry);
            }
            self.counts[k] += 1;
        }
        self.len += 1;
    }

    /// Moves the cursor to `w`, cascading every coarser level whose window
    /// changed: the slot now under each cursor is drained and its entries
    /// re-inserted, where they fall into strictly finer levels (their
    /// delta is below the drained level's slot width).  Crossing a whole
    /// wheel lap re-levels the overflow list the same way.
    fn advance_to(&mut self, w: u64) {
        debug_assert!(w >= self.now, "wheel cursor moved backwards");
        let old = self.now;
        self.now = w;
        self.cursor_sorted = false;
        if (old >> (SHIFT * LEVELS as u32)) != (w >> (SHIFT * LEVELS as u32)) {
            let overflow = std::mem::take(&mut self.overflow);
            self.len -= overflow.len();
            for e in overflow {
                self.insert(e);
            }
        }
        for j in (1..LEVELS).rev() {
            if (old >> (SHIFT * j as u32)) == (w >> (SHIFT * j as u32)) {
                // Same level-j window as before: this and every finer
                // level is already cascaded.
                continue;
            }
            let cj = ((w >> (SHIFT * j as u32)) & MASK) as usize;
            if self.levels[j][cj].is_empty() {
                continue;
            }
            let entries = std::mem::take(&mut self.levels[j][cj]);
            self.counts[j] -= entries.len();
            self.len -= entries.len();
            for e in entries {
                self.insert(e);
            }
        }
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let c0 = (self.now & MASK) as usize;
            if !self.levels[0][c0].is_empty() {
                // Every entry here is due exactly at `now` (level-0 slots
                // are 1 ms wide and never hold future laps).
                if !self.cursor_sorted {
                    self.levels[0][c0].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                    self.cursor_sorted = true;
                }
                let e = self.levels[0][c0].pop().expect("non-empty slot");
                self.counts[0] -= 1;
                self.len -= 1;
                return Some((e.time, e.payload));
            }
            if self.counts[0] > 0 {
                // More level-0 events: either later in this rotation, or
                // (if only wrapped slots remain) in the next level-1
                // window.
                let base = self.now & !MASK;
                match ((c0 + 1)..SLOTS).find(|&s| !self.levels[0][s].is_empty()) {
                    Some(s) => self.advance_to(base + s as u64),
                    None => self.advance_to(base + SLOTS as u64),
                }
                continue;
            }
            let mut advanced = false;
            for k in 1..LEVELS {
                if self.counts[k] == 0 {
                    continue;
                }
                // Finer levels are empty, so the next event sits at level
                // k: enter the window of its first occupied slot (or the
                // next coarser window, when only wrapped slots remain) and
                // let the cascade pull it down.
                let ck = ((self.now >> (SHIFT * k as u32)) & MASK) as usize;
                let rotation = self.now & !(width(k + 1) - 1);
                match ((ck + 1)..SLOTS).find(|&s| !self.levels[k][s].is_empty()) {
                    Some(s) => self.advance_to(rotation + s as u64 * width(k)),
                    None => self.advance_to(rotation + width(k + 1)),
                }
                advanced = true;
                break;
            }
            if advanced {
                continue;
            }
            // Wheels empty; the next event is in overflow.  Jump straight
            // to its top-level window instead of lapping the wheel.
            debug_assert!(!self.overflow.is_empty(), "len > 0 with empty wheel and overflow");
            let min_t =
                self.overflow.iter().map(|e| e.time.as_millis()).min().expect("non-empty overflow");
            let target = (min_t & !(width(LEVELS - 1) - 1)).max(self.now);
            self.advance_to(target);
            let overflow = std::mem::take(&mut self.overflow);
            self.len -= overflow.len();
            for e in overflow {
                self.insert(e);
            }
        }
    }

    /// Timestamp of the earliest pending event (O(n) worst case — provided
    /// for parity with the other queues, not used on hot paths).
    pub fn peek_time(&self) -> Option<SimTime> {
        // Fast path: a sorted cursor slot's back entry is the global
        // minimum.
        let c0 = (self.now & MASK) as usize;
        if self.cursor_sorted {
            if let Some(e) = self.levels[0][c0].last() {
                return Some(e.time);
            }
        }
        self.levels
            .iter()
            .flat_map(|slots| slots.iter().flatten())
            .chain(self.overflow.iter())
            .min_by_key(|e| e.key())
            .map(|e| e.time)
    }
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl<E> PendingQueue<E> for TimingWheel<E> {
    fn push(&mut self, time: SimTime, payload: E) {
        TimingWheel::push(self, time, payload);
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        TimingWheel::pop(self)
    }

    fn unpop(&mut self, time: SimTime, payload: E) {
        TimingWheel::unpop(self, time, payload);
    }

    fn len(&self) -> usize {
        TimingWheel::len(self)
    }

    fn pushed_total(&self) -> u64 {
        TimingWheel::pushed_total(self)
    }
}

impl<E> std::fmt::Debug for TimingWheel<E> {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("TimingWheel")
            .field("len", &self.len)
            .field("now_ms", &self.now)
            .field("levels", &LEVELS)
            .field("slots_per_level", &SLOTS)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut q = TimingWheel::new();
        q.push(SimTime(1_550), "c");
        q.push(SimTime(20), "a");
        q.push(SimTime(170), "b");
        q.push(SimTime(5_000_000), "d");
        assert_eq!(q.pop(), Some((SimTime(20), "a")));
        assert_eq!(q.pop(), Some((SimTime(170), "b")));
        assert_eq!(q.pop(), Some((SimTime(1_550), "c")));
        assert_eq!(q.pop(), Some((SimTime(5_000_000), "d")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = TimingWheel::new();
        for i in 0..10 {
            q.push(SimTime(25), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((SimTime(25), i)));
        }
    }

    #[test]
    fn overflow_events_are_ordered() {
        // Far enough out to overflow the wheel span, across several laps.
        let mut q = TimingWheel::new();
        q.push(SimTime(5), 0);
        q.push(SimTime(SPAN + 45), 1);
        q.push(SimTime(3 * SPAN + 85), 2);
        assert_eq!(q.pop(), Some((SimTime(5), 0)));
        assert_eq!(q.pop(), Some((SimTime(SPAN + 45), 1)));
        assert_eq!(q.pop(), Some((SimTime(3 * SPAN + 85), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = TimingWheel::new();
        q.push(SimTime(500), 'b');
        q.push(SimTime(100), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime(300), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
    }

    #[test]
    fn unpop_keeps_fifo_front_position() {
        let mut q = TimingWheel::new();
        q.push(SimTime(50), "first");
        q.push(SimTime(50), "second");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "first");
        q.unpop(t, e);
        assert_eq!(q.pop(), Some((SimTime(50), "first")));
        assert_eq!(q.pop(), Some((SimTime(50), "second")));
    }

    #[test]
    #[should_panic(expected = "before the wheel")]
    fn past_events_rejected() {
        let mut q = TimingWheel::new();
        q.push(SimTime(100), ());
        let _ = q.pop();
        q.push(SimTime(5), ());
    }

    #[test]
    fn cascade_preserves_order_near_window_boundaries() {
        // Events straddling level-1 and level-2 window boundaries, pushed
        // from a cursor close to the boundary so some wrap.
        let mut q = TimingWheel::new();
        q.push(SimTime(60), 0);
        assert_eq!(q.pop(), Some((SimTime(60), 0)));
        q.push(SimTime(62), 1); // this rotation
        q.push(SimTime(70), 2); // wrapped into the next level-1 window
        q.push(SimTime(64), 3); // next window, boundary slot
        q.push(SimTime(4_096), 4); // next level-2 window, boundary slot
        q.push(SimTime(4_100), 5);
        for want in [(62, 1), (64, 3), (70, 2), (4_096, 4), (4_100, 5)] {
            assert_eq!(q.pop(), Some((SimTime(want.0), want.1)));
        }
    }

    #[test]
    fn agrees_with_binary_heap_queue_on_random_workload() {
        let mut rng = Rng::seed_from(5);
        let mut wheel = TimingWheel::new();
        let mut heap = crate::event::EventQueue::new();
        let mut clock = 0u64;
        for step in 0..5_000 {
            if rng.chance(0.6) || wheel.is_empty() {
                // Mixed horizons: mostly near, some far enough to exercise
                // upper levels and the overflow list.
                let t =
                    clock + if rng.chance(0.05) { rng.below(2 * SPAN) } else { rng.below(300_000) };
                wheel.push(SimTime(t), step);
                heap.push(SimTime(t), step);
            } else {
                let a = wheel.pop().unwrap();
                let b = heap.pop().unwrap();
                assert_eq!(a, b, "queues diverged at step {step}");
                clock = a.0.as_millis();
            }
        }
        while let Some(b) = heap.pop() {
            assert_eq!(wheel.pop().unwrap(), b);
        }
        assert!(wheel.is_empty());
        assert_eq!(wheel.peek_time(), None);
    }

    #[test]
    fn peek_finds_minimum() {
        let mut q = TimingWheel::new();
        q.push(SimTime(31_000), 1);
        q.push(SimTime(7), 2);
        assert_eq!(q.peek_time(), Some(SimTime(7)));
    }

    #[test]
    fn push_at_cursor_time_keeps_fifo() {
        let mut q = TimingWheel::new();
        q.push(SimTime(10), 0);
        q.push(SimTime(10), 1);
        assert_eq!(q.pop(), Some((SimTime(10), 0)));
        // The cursor now sits at t=10 with a sorted slot; pushing the same
        // timestamp must binary-insert behind the remaining entry.
        q.push(SimTime(10), 2);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        assert_eq!(q.pop(), Some((SimTime(10), 2)));
    }
}
