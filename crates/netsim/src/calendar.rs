//! A bucketed *calendar queue* — the classic alternative to a binary heap
//! for discrete-event simulation (Brown, CACM 1988).
//!
//! Events land in a circular array of day "buckets" by timestamp; popping
//! scans the current bucket (kept sorted lazily) and wraps around the
//! calendar.  For workloads whose pending events cluster tightly in time —
//! like this simulator's retry/timeout traffic — bucket scans touch few
//! elements and amortised cost approaches O(1), versus O(log n) for a
//! heap.  The `event_queue` ablation bench compares both under the
//! simulator's actual scheduling pattern.
//!
//! Semantics match [`crate::event::EventQueue`]: FIFO order among equal
//! timestamps, monotone pops.

use crate::time::SimTime;

/// One stored event.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

/// A calendar queue with fixed bucket width.
pub struct CalendarQueue<E> {
    /// Circular buckets; each holds unordered entries for times in
    /// `[k·width, (k+1)·width)` for some epoch `k` congruent to the bucket
    /// index.
    buckets: Vec<Vec<Entry<E>>>,
    /// Bucket width in ms.
    width: u64,
    /// Lower bound of the earliest possibly-non-empty bucket's window.
    current_window: u64,
    /// Index of the bucket for `current_window`.
    current_bucket: usize,
    len: usize,
    next_seq: u64,
}

impl<E> CalendarQueue<E> {
    /// Creates a queue with `buckets` buckets of `width_ms` each.  The
    /// calendar spans `buckets × width_ms`; events beyond that wrap and
    /// cost extra scans, so pick a span covering the typical scheduling
    /// horizon (e.g. one day of 1-minute buckets).
    pub fn new(buckets: usize, width_ms: u64) -> Self {
        assert!(buckets > 0 && width_ms > 0, "degenerate calendar");
        CalendarQueue {
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
            width: width_ms,
            current_window: 0,
            current_bucket: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    /// If `time` precedes the last popped window start (causality).
    pub fn push(&mut self, time: SimTime, payload: E) {
        assert!(
            time.as_millis() >= self.current_window,
            "event scheduled before the calendar's current window"
        );
        let slot = (time.as_millis() / self.width) as usize % self.buckets.len();
        self.buckets[slot].push(Entry { time, seq: self.next_seq, payload });
        self.next_seq += 1;
        self.len += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let window_end = self.current_window + self.width;
            let bucket = &mut self.buckets[self.current_bucket];
            // Find the minimum entry of this bucket that belongs to the
            // current window (entries from future calendar laps share the
            // bucket and must wait).
            let mut best: Option<usize> = None;
            for (i, e) in bucket.iter().enumerate() {
                if e.time.as_millis() >= window_end {
                    continue;
                }
                best = match best {
                    None => Some(i),
                    Some(b) => {
                        let eb = &bucket[b];
                        if (e.time, e.seq) < (eb.time, eb.seq) {
                            Some(i)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            if let Some(i) = best {
                let e = bucket.swap_remove(i);
                self.len -= 1;
                return Some((e.time, e.payload));
            }
            // Advance the calendar.
            self.current_window = window_end;
            self.current_bucket = (self.current_bucket + 1) % self.buckets.len();
        }
    }

    /// Timestamp of the earliest pending event (O(n) worst case — provided
    /// for parity with `EventQueue`, not used on hot paths).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter())
            .min_by_key(|e| (e.time, e.seq))
            .map(|e| e.time)
    }
}

impl<E> std::fmt::Debug for CalendarQueue<E> {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("CalendarQueue")
            .field("len", &self.len)
            .field("buckets", &self.buckets.len())
            .field("width_ms", &self.width)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn pops_in_time_order_across_buckets() {
        let mut q = CalendarQueue::new(16, 100);
        q.push(SimTime(1_550), "c");
        q.push(SimTime(20), "a");
        q.push(SimTime(170), "b");
        assert_eq!(q.pop(), Some((SimTime(20), "a")));
        assert_eq!(q.pop(), Some((SimTime(170), "b")));
        assert_eq!(q.pop(), Some((SimTime(1_550), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = CalendarQueue::new(4, 50);
        for i in 0..10 {
            q.push(SimTime(25), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((SimTime(25), i)));
        }
    }

    #[test]
    fn wrap_around_laps_are_ordered() {
        // Calendar spans 4 × 10 = 40 ms; schedule far beyond one lap.
        let mut q = CalendarQueue::new(4, 10);
        q.push(SimTime(5), 0);
        q.push(SimTime(45), 1); // same bucket as 5, next lap
        q.push(SimTime(85), 2); // same bucket, lap after
        assert_eq!(q.pop(), Some((SimTime(5), 0)));
        assert_eq!(q.pop(), Some((SimTime(45), 1)));
        assert_eq!(q.pop(), Some((SimTime(85), 2)));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = CalendarQueue::new(8, 100);
        q.push(SimTime(500), 'b');
        q.push(SimTime(100), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        // Pushing after popping is fine as long as causality holds.
        q.push(SimTime(300), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
    }

    #[test]
    #[should_panic(expected = "before the calendar")]
    fn past_events_rejected() {
        let mut q = CalendarQueue::new(4, 10);
        q.push(SimTime(100), ());
        let _ = q.pop();
        q.push(SimTime(5), ());
    }

    #[test]
    fn agrees_with_binary_heap_queue_on_random_workload() {
        let mut rng = Rng::seed_from(5);
        let mut cal = CalendarQueue::new(64, 25);
        let mut heap = crate::event::EventQueue::new();
        let mut clock = 0u64;
        for step in 0..5_000 {
            if rng.chance(0.6) || cal.is_empty() {
                let t = clock + rng.below(3_000);
                cal.push(SimTime(t), step);
                heap.push(SimTime(t), step);
            } else {
                let a = cal.pop().unwrap();
                let b = heap.pop().unwrap();
                assert_eq!(a, b, "queues diverged at step {step}");
                clock = a.0.as_millis();
            }
        }
        while let Some(b) = heap.pop() {
            assert_eq!(cal.pop().unwrap(), b);
        }
        assert!(cal.is_empty());
        assert_eq!(cal.peek_time(), None);
    }

    #[test]
    fn peek_finds_minimum() {
        let mut q = CalendarQueue::new(4, 10);
        q.push(SimTime(31), 1);
        q.push(SimTime(7), 2);
        assert_eq!(q.peek_time(), Some(SimTime(7)));
    }
}
