//! A bucketed *calendar queue* — the classic alternative to a binary heap
//! for discrete-event simulation (Brown, CACM 1988).
//!
//! Events land in a circular array of "day" buckets by timestamp.  The
//! bucket under the cursor is kept sorted descending by `(time, seq)`, so
//! the next event to fire is always at its *back* and popping is a plain
//! `Vec::pop`; other buckets stay unsorted and are sorted once, lazily,
//! when the cursor reaches them.  For workloads whose pending events
//! cluster tightly in time — like this simulator's retry/timeout traffic —
//! most pushes land outside the current window (O(1) append) and pops are
//! O(1), versus O(log n) sift costs for a heap.  The `event_queue`
//! ablation bench and the `perf_baseline` binary compare both under the
//! simulator's actual scheduling pattern.
//!
//! Semantics match [`crate::event::EventQueue`] exactly: FIFO order among
//! equal timestamps, monotone pops.  A property test in
//! `tests/queue_equivalence.rs` asserts the two yield identical
//! `(time, payload)` sequences on arbitrary schedules.

use crate::queue::PendingQueue;
use crate::time::SimTime;

/// One stored event.
///
/// `seq` is signed: pushes count up from zero, [`CalendarQueue::unpop`]
/// counts down from −1 (see [`crate::queue::PendingQueue::unpop`]).
struct Entry<E> {
    time: SimTime,
    seq: i64,
    payload: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (SimTime, i64) {
        (self.time, self.seq)
    }
}

/// A calendar queue with fixed bucket width.
pub struct CalendarQueue<E> {
    /// Circular buckets; each holds entries for times in
    /// `[k·width, (k+1)·width)` for some epoch `k` congruent to the bucket
    /// index.  The bucket at `current_bucket` is sorted descending by
    /// `(time, seq)` (minimum at the back); the rest are unsorted.
    buckets: Vec<Vec<Entry<E>>>,
    /// Bucket width in ms.
    width: u64,
    /// Lower bound of the earliest possibly-non-empty bucket's window.
    current_window: u64,
    /// Index of the bucket for `current_window`.
    current_bucket: usize,
    len: usize,
    next_seq: i64,
    front_seq: i64,
}

impl<E> CalendarQueue<E> {
    /// Creates a queue with `buckets` buckets of `width_ms` each.  The
    /// calendar spans `buckets × width_ms`; events beyond that wrap and
    /// cost extra scans, so pick a span covering the typical scheduling
    /// horizon (e.g. one day of 1-minute buckets).
    pub fn new(buckets: usize, width_ms: u64) -> Self {
        assert!(buckets > 0 && width_ms > 0, "degenerate calendar");
        CalendarQueue {
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
            width: width_ms,
            current_window: 0,
            current_bucket: 0,
            len: 0,
            next_seq: 0,
            front_seq: 0,
        }
    }

    /// A calendar sized for the simulator's scheduling pattern: one day of
    /// one-minute buckets.  Session retries, keepalives and collection
    /// ticks almost always land within this span, so wrap-around laps are
    /// rare.
    pub fn for_simulation() -> Self {
        CalendarQueue::new(24 * 60, 60_000)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever pushed (diagnostics).
    pub fn pushed_total(&self) -> u64 {
        self.next_seq as u64
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    /// If `time` precedes the last popped window start (causality).
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Entry { time, seq, payload });
    }

    /// Reinserts a just-popped minimum at the front of its FIFO class
    /// (see [`crate::queue::PendingQueue::unpop`]).
    pub fn unpop(&mut self, time: SimTime, payload: E) {
        self.front_seq -= 1;
        let seq = self.front_seq;
        self.insert(Entry { time, seq, payload });
    }

    fn insert(&mut self, entry: Entry<E>) {
        assert!(
            entry.time.as_millis() >= self.current_window,
            "event scheduled before the calendar's current window"
        );
        let slot = (entry.time.as_millis() / self.width) as usize % self.buckets.len();
        let bucket = &mut self.buckets[slot];
        if slot == self.current_bucket {
            // The cursor bucket is sorted descending; binary-insert to keep
            // the minimum at the back.  `partition_point` finds the first
            // index whose key is <= ours in descending order.
            let key = entry.key();
            let pos = bucket.partition_point(|e| e.key() > key);
            bucket.insert(pos, entry);
        } else {
            bucket.push(entry);
        }
        self.len += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let window_end = self.current_window + self.width;
            let bucket = &mut self.buckets[self.current_bucket];
            // Sorted descending: the back entry is the bucket minimum.  If
            // it belongs to a future calendar lap, so does everything else
            // in the bucket.
            if let Some(e) = bucket.last() {
                if e.time.as_millis() < window_end {
                    let e = bucket.pop().expect("non-empty bucket");
                    self.len -= 1;
                    return Some((e.time, e.payload));
                }
            }
            // Advance the calendar and sort the next cursor bucket so its
            // minimum sits at the back.
            self.current_window = window_end;
            self.current_bucket = (self.current_bucket + 1) % self.buckets.len();
            let next = &mut self.buckets[self.current_bucket];
            if next.len() > 1 {
                next.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            }
        }
    }

    /// Timestamp of the earliest pending event (O(n) worst case — provided
    /// for parity with `EventQueue`, not used on hot paths).
    pub fn peek_time(&self) -> Option<SimTime> {
        // Fast path: the cursor bucket's back entry, when it belongs to the
        // current window, is the global minimum.
        if let Some(e) = self.buckets[self.current_bucket].last() {
            if e.time.as_millis() < self.current_window + self.width {
                return Some(e.time);
            }
        }
        self.buckets.iter().flat_map(|b| b.iter()).min_by_key(|e| e.key()).map(|e| e.time)
    }
}

impl<E> PendingQueue<E> for CalendarQueue<E> {
    fn push(&mut self, time: SimTime, payload: E) {
        CalendarQueue::push(self, time, payload);
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        CalendarQueue::pop(self)
    }

    fn unpop(&mut self, time: SimTime, payload: E) {
        CalendarQueue::unpop(self, time, payload);
    }

    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }

    fn pushed_total(&self) -> u64 {
        CalendarQueue::pushed_total(self)
    }
}

impl<E> std::fmt::Debug for CalendarQueue<E> {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("CalendarQueue")
            .field("len", &self.len)
            .field("buckets", &self.buckets.len())
            .field("width_ms", &self.width)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn pops_in_time_order_across_buckets() {
        let mut q = CalendarQueue::new(16, 100);
        q.push(SimTime(1_550), "c");
        q.push(SimTime(20), "a");
        q.push(SimTime(170), "b");
        assert_eq!(q.pop(), Some((SimTime(20), "a")));
        assert_eq!(q.pop(), Some((SimTime(170), "b")));
        assert_eq!(q.pop(), Some((SimTime(1_550), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = CalendarQueue::new(4, 50);
        for i in 0..10 {
            q.push(SimTime(25), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((SimTime(25), i)));
        }
    }

    #[test]
    fn wrap_around_laps_are_ordered() {
        // Calendar spans 4 × 10 = 40 ms; schedule far beyond one lap.
        let mut q = CalendarQueue::new(4, 10);
        q.push(SimTime(5), 0);
        q.push(SimTime(45), 1); // same bucket as 5, next lap
        q.push(SimTime(85), 2); // same bucket, lap after
        assert_eq!(q.pop(), Some((SimTime(5), 0)));
        assert_eq!(q.pop(), Some((SimTime(45), 1)));
        assert_eq!(q.pop(), Some((SimTime(85), 2)));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = CalendarQueue::new(8, 100);
        q.push(SimTime(500), 'b');
        q.push(SimTime(100), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        // Pushing after popping is fine as long as causality holds.
        q.push(SimTime(300), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
    }

    #[test]
    fn unpop_keeps_fifo_front_position() {
        let mut q = CalendarQueue::new(8, 100);
        q.push(SimTime(50), "first");
        q.push(SimTime(50), "second");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "first");
        q.unpop(t, e);
        assert_eq!(q.pop(), Some((SimTime(50), "first")));
        assert_eq!(q.pop(), Some((SimTime(50), "second")));
    }

    #[test]
    #[should_panic(expected = "before the calendar")]
    fn past_events_rejected() {
        let mut q = CalendarQueue::new(4, 10);
        q.push(SimTime(100), ());
        let _ = q.pop();
        q.push(SimTime(5), ());
    }

    #[test]
    fn agrees_with_binary_heap_queue_on_random_workload() {
        let mut rng = Rng::seed_from(5);
        let mut cal = CalendarQueue::new(64, 25);
        let mut heap = crate::event::EventQueue::new();
        let mut clock = 0u64;
        for step in 0..5_000 {
            if rng.chance(0.6) || cal.is_empty() {
                let t = clock + rng.below(3_000);
                cal.push(SimTime(t), step);
                heap.push(SimTime(t), step);
            } else {
                let a = cal.pop().unwrap();
                let b = heap.pop().unwrap();
                assert_eq!(a, b, "queues diverged at step {step}");
                clock = a.0.as_millis();
            }
        }
        while let Some(b) = heap.pop() {
            assert_eq!(cal.pop().unwrap(), b);
        }
        assert!(cal.is_empty());
        assert_eq!(cal.peek_time(), None);
    }

    #[test]
    fn peek_finds_minimum() {
        let mut q = CalendarQueue::new(4, 10);
        q.push(SimTime(31), 1);
        q.push(SimTime(7), 2);
        assert_eq!(q.peek_time(), Some(SimTime(7)));
    }

    #[test]
    fn push_into_cursor_bucket_mid_scan_stays_sorted() {
        // Pop advances the cursor into a bucket, then new events land in
        // that same (sorted) bucket: the binary insertion must keep the
        // back-is-minimum invariant.
        let mut q = CalendarQueue::new(4, 100);
        q.push(SimTime(150), 'b');
        assert_eq!(q.pop(), Some((SimTime(150), 'b'))); // cursor now in bucket 1
        q.push(SimTime(180), 'd');
        q.push(SimTime(160), 'c');
        q.push(SimTime(199), 'e');
        assert_eq!(q.pop(), Some((SimTime(160), 'c')));
        assert_eq!(q.pop(), Some((SimTime(180), 'd')));
        assert_eq!(q.pop(), Some((SimTime(199), 'e')));
    }
}
