//! Network latency and bandwidth models for the simulated transport.
//!
//! The honeypot measurement is sensitive to *pacing*: a peer talking to a
//! no-content honeypot is clocked by its own request timeout, while one
//! downloading random content is clocked by transfer latency (paper §IV-B,
//! Figs. 8–9).  The latency model therefore distinguishes a per-link base
//! RTT, jitter, and a throughput term for data-bearing messages.

use serde::{Deserialize, Serialize};

use crate::rng::Rng;

/// Latency/bandwidth parameters for a class of links.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Minimum one-way delay in ms.
    pub base_ms: u64,
    /// Additional uniformly-distributed jitter bound in ms.
    pub jitter_ms: u64,
    /// Throughput in bytes per second used for payload serialisation time
    /// (0 disables the term, e.g. for control messages).
    pub bytes_per_sec: u64,
}

impl LatencyModel {
    /// Typical 2008-era consumer ADSL reaching a European server: ~60 ms
    /// one-way, modest jitter, ~150 KB/s down.
    pub fn adsl() -> Self {
        LatencyModel { base_ms: 60, jitter_ms: 40, bytes_per_sec: 150_000 }
    }

    /// A fast, well-connected host (PlanetLab node or index server).
    pub fn backbone() -> Self {
        LatencyModel { base_ms: 15, jitter_ms: 10, bytes_per_sec: 2_000_000 }
    }

    /// Fixed-delay model for tests.
    pub fn fixed(ms: u64) -> Self {
        LatencyModel { base_ms: ms, jitter_ms: 0, bytes_per_sec: 0 }
    }

    /// Samples the one-way delay for a message of `payload_bytes`.
    pub fn sample_ms(&self, rng: &mut Rng, payload_bytes: usize) -> u64 {
        let jitter = if self.jitter_ms == 0 { 0 } else { rng.below(self.jitter_ms + 1) };
        let transfer = (payload_bytes as u64 * 1_000).checked_div(self.bytes_per_sec).unwrap_or(0);
        self.base_ms + jitter + transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_model_is_deterministic() {
        let m = LatencyModel::fixed(25);
        let mut rng = Rng::seed_from(1);
        assert_eq!(m.sample_ms(&mut rng, 0), 25);
        assert_eq!(m.sample_ms(&mut rng, 10_000), 25, "no throughput term");
    }

    #[test]
    fn jitter_bounded() {
        let m = LatencyModel { base_ms: 10, jitter_ms: 5, bytes_per_sec: 0 };
        let mut rng = Rng::seed_from(2);
        for _ in 0..1_000 {
            let d = m.sample_ms(&mut rng, 0);
            assert!((10..=15).contains(&d));
        }
    }

    #[test]
    fn payload_adds_transfer_time() {
        let m = LatencyModel { base_ms: 0, jitter_ms: 0, bytes_per_sec: 100_000 };
        let mut rng = Rng::seed_from(3);
        // 180 KB at 100 KB/s ≈ 1.8 s.
        assert_eq!(m.sample_ms(&mut rng, 184_320), 1_843);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let mut rng = Rng::seed_from(4);
        let adsl: u64 = (0..100).map(|_| LatencyModel::adsl().sample_ms(&mut rng, 184_320)).sum();
        let bb: u64 = (0..100).map(|_| LatencyModel::backbone().sample_ms(&mut rng, 184_320)).sum();
        assert!(adsl > bb, "ADSL must be slower than backbone for data blocks");
    }
}
