//! Deterministic random-number generation.
//!
//! Every experiment is reproducible bit-for-bit from a single 64-bit seed.
//! The generator is `xoshiro256**` (public-domain algorithm by Blackman &
//! Vigna), seeded through SplitMix64 as its authors recommend; we implement
//! both from scratch so the simulation's determinism does not depend on the
//! version of an external crate.
//!
//! Independent components of the simulation draw from *named sub-streams*
//! ([`Rng::substream`]) so that adding a consumer in one module does not
//! perturb the values another module sees.

/// SplitMix64 step — used for seeding and stream derivation.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent 64-bit seed for a numbered stream of a master
/// seed.
///
/// Used by lane-sharded execution: lane `n` of a scenario seeded with `s`
/// roots its behavioural RNG at `stream_seed(s, n)`, so lanes draw from
/// decorrelated streams while remaining a pure function of `(seed, lane)` —
/// no lane ever observes another lane's draws, which is what makes the
/// sharded schedule independent of thread interleaving.  Stream 0 is
/// reserved to mean "the unsharded stream": `stream_seed(s, 0) != s`, so
/// callers that want the classic single-stream behaviour should use the
/// master seed directly rather than stream 0.
#[inline]
pub fn stream_seed(master: u64, stream: u64) -> u64 {
    // Mix the stream number through the golden-ratio increment first so
    // adjacent streams land far apart, then fold with the master seed
    // through two SplitMix64 steps (one would leave `master ^ f(stream)`
    // structure visible to xor-differential patterns).
    let mut h = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mixed = splitmix64(&mut h);
    let mut h2 = mixed ^ stream.rotate_left(32);
    splitmix64(&mut h2)
}

/// A `xoshiro256**` generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator from a 64-bit seed via SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        let mut rng = Rng { s };
        // Avoid the degenerate all-zero state (astronomically unlikely, but
        // cheap to rule out).
        if rng.s == [0; 4] {
            rng.s = [0x1, 0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB];
        }
        rng
    }

    /// Derives an independent generator for a named component.
    ///
    /// The name is folded through SplitMix64 together with fresh output of
    /// `self`, so sibling sub-streams are decorrelated and the parent
    /// advances by exactly one draw regardless of the name.
    pub fn substream(&mut self, name: &str) -> Rng {
        let mut h = self.next_u64();
        for b in name.as_bytes() {
            h = splitmix64(&mut h) ^ u64::from(*b);
        }
        Rng::seed_from(h)
    }

    /// Derives an independent generator for an indexed component (e.g. one
    /// per honeypot or per peer).
    pub fn substream_indexed(&mut self, name: &str, index: u64) -> Rng {
        let mut sub = self.substream(name);
        let mut h = sub.next_u64() ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::seed_from(splitmix64(&mut h))
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)` with 53-bit precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]` — safe to pass to `ln()`.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift rejection.
    ///
    /// # Panics
    /// If `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Widening multiply; rejection keeps the result exactly uniform.
        let mut m = (self.next_u64() as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = (self.next_u64() as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// If `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Chooses one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (partial Fisher–Yates over
    /// an index map; O(k) memory).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        // For small k relative to n, rejection sampling into a set is
        // cheaper than materialising [0, n).
        if k * 8 < n {
            let mut seen = std::collections::HashSet::with_capacity(k * 2);
            let mut out = Vec::with_capacity(k);
            while out.len() < k {
                let x = self.below(n as u64) as usize;
                if seen.insert(x) {
                    out.push(x);
                }
            }
            return out;
        }
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Fills a buffer with random bytes (used by the *random-content*
    /// honeypot strategy).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&b[..rest.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_independent_of_sibling_order() {
        let mut root1 = Rng::seed_from(7);
        let a1 = root1.substream("alpha").next_u64();
        let _ = root1.substream("beta");

        let mut root2 = Rng::seed_from(7);
        let a2 = root2.substream("alpha").next_u64();
        assert_eq!(a1, a2, "first-drawn substream must not depend on later siblings");
    }

    #[test]
    fn indexed_substreams_differ() {
        let mut root = Rng::seed_from(7);
        let x = root.substream_indexed("hp", 0).next_u64();
        let mut root = Rng::seed_from(7);
        let y = root.substream_indexed("hp", 1).next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let master = 0xED0_2009;
        let mut seen = std::collections::HashSet::new();
        for stream in 0..64 {
            assert!(seen.insert(stream_seed(master, stream)), "stream seed collision");
        }
        // Pure function of (master, stream).
        assert_eq!(stream_seed(master, 3), stream_seed(master, 3));
        // Stream 0 is not the master seed itself.
        assert_ne!(stream_seed(master, 0), master);
        // Different masters give different stream families.
        assert_ne!(stream_seed(1, 5), stream_seed(2, 5));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Rng::seed_from(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} out of tolerance");
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng::seed_from(5);
        for _ in 0..1_000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::seed_from(9);
        for (n, k) in [(100, 5), (100, 90), (24, 24), (10, 0)] {
            let s = rng.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "indices must be distinct");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Rng::seed_from(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 zero bytes is 2^-104 unlikely");
    }

    #[test]
    fn known_xoshiro_progression_is_stable() {
        // Pin the generator's output so accidental algorithm changes fail
        // loudly (reproducibility contract of the whole experiment suite).
        let mut rng = Rng::seed_from(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut rng2 = Rng::seed_from(0);
        let again: Vec<u64> = (0..3).map(|_| rng2.next_u64()).collect();
        assert_eq!(first, again);
    }
}
