//! The pending-event queue of the discrete-event engine.
//!
//! Events are ordered by timestamp with a monotone sequence number breaking
//! ties, so simultaneous events fire in insertion order — a requirement for
//! reproducibility (`BinaryHeap` alone is not stable).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Internal heap entry.  Ordering ignores the payload entirely.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A stable time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (diagnostics).
    pub fn pushed_total(&self) -> u64 {
        self.next_seq
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("pushed_total", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime(9), ());
        assert_eq!(q.peek_time(), Some(SimTime(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 1);
        q.push(SimTime(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pushed_total(), 3);
    }
}
