//! The pending-event queue of the discrete-event engine.
//!
//! Events are ordered by timestamp with a monotone sequence number breaking
//! ties, so simultaneous events fire in insertion order — a requirement for
//! reproducibility (`BinaryHeap` alone is not stable).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::queue::PendingQueue;
use crate::time::SimTime;

/// Internal heap entry.  Ordering ignores the payload entirely.
///
/// `seq` is signed: ordinary pushes count up from zero, while
/// [`EventQueue::unpop`] counts down from −1 so a re-parked event sorts
/// ahead of every same-time entry that was pushed normally.
struct Entry<E> {
    time: SimTime,
    seq: i64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A stable time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: i64,
    front_seq: i64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, front_seq: 0 }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Reinserts a just-popped minimum at the front of its FIFO class
    /// (see [`crate::queue::PendingQueue::unpop`]).
    pub fn unpop(&mut self, time: SimTime, payload: E) {
        self.front_seq -= 1;
        self.heap.push(Reverse(Entry { time, seq: self.front_seq, payload }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (diagnostics).
    pub fn pushed_total(&self) -> u64 {
        self.next_seq as u64
    }
}

impl<E> PendingQueue<E> for EventQueue<E> {
    fn push(&mut self, time: SimTime, payload: E) {
        EventQueue::push(self, time, payload);
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }

    fn unpop(&mut self, time: SimTime, payload: E) {
        EventQueue::unpop(self, time, payload);
    }

    fn len(&self) -> usize {
        EventQueue::len(self)
    }

    fn pushed_total(&self) -> u64 {
        EventQueue::pushed_total(self)
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("pushed_total", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime(9), ());
        assert_eq!(q.peek_time(), Some(SimTime(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn unpop_keeps_fifo_front_position() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), "first");
        q.push(SimTime(5), "second");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "first");
        q.unpop(t, e);
        // A plain push would send "first" behind "second"; unpop must not.
        assert_eq!(q.pop(), Some((SimTime(5), "first")));
        assert_eq!(q.pop(), Some((SimTime(5), "second")));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 1);
        q.push(SimTime(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pushed_total(), 3);
    }
}
