//! Structured observability facade: levelled zero-alloc events and a
//! per-thread flight recorder.
//!
//! This is the *core* of the workspace observability layer — it lives in
//! `netsim` (the bottom crate of the workspace) so the simulation engine,
//! the analysis index builder and the live control plane can all emit
//! events through one facade.  `edonkey_platform::obs` re-exports it and
//! adds the metrics registry, histograms and the snapshot scraper.
//!
//! Design constraints, in order:
//!
//! 1. **Purity.**  Observation must never change what the system under
//!    observation does.  Events carry only `Copy` scalars and
//!    fixed-capacity inline strings; recording is a write into a
//!    pre-allocated per-thread ring.  Nothing here allocates on the emit
//!    path, takes a lock shared with the data path, or does I/O.
//! 2. **Always-on affordability.**  With the global level at
//!    [`Level::Off`] (the default) an event site is one relaxed atomic
//!    load and a branch.
//! 3. **Post-mortem value.**  Each thread keeps the last
//!    [`RING_CAPACITY`] events in a fixed ring (overwrite-oldest).  On a
//!    chaos-test failure the harness calls [`dump_all`] to ship every
//!    live ring to a JSONL file — the crash comes with its own trace.
//!
//! The emit API is the [`obs_event!`] macro:
//!
//! ```
//! use netsim::obs::{self, Level};
//! obs::set_level(Level::Info);
//! netsim::obs_event!(Level::Info, "doctest", "hello", peer = 42u64, kind = "hello");
//! ```

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Event verbosity, ordered: a global level of `Info` records `Error`,
/// `Warn` and `Info` events and skips `Debug`/`Trace`.  `Off` disables
/// recording entirely (the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Recording disabled; event sites cost one atomic load.
    Off = 0,
    /// Unrecoverable or data-affecting faults (WAL append failure, …).
    Error = 1,
    /// Degraded-but-running conditions (spool fallback, reaping, …).
    Warn = 2,
    /// Normal operational milestones — the default *enabled* verbosity.
    Info = 3,
    /// Per-message detail (chunk acks, retries).
    Debug = 4,
    /// Maximum verbosity: per-event-loop-pass detail, sim phase spans.
    Trace = 5,
}

impl Level {
    /// Short lowercase name used in JSONL dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            5 => Level::Trace,
            _ => Level::Off,
        }
    }
}

/// Global verbosity; `Off` by default so an un-configured process pays
/// only the guard load per event site.
static GLOBAL_LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// Monotone event sequence shared by all threads — gives dumps a total
/// order even across per-thread rings.
static GLOBAL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Set the global verbosity.  Takes effect immediately on all threads.
pub fn set_level(level: Level) {
    GLOBAL_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current global verbosity.
pub fn level() -> Level {
    Level::from_u8(GLOBAL_LEVEL.load(Ordering::Relaxed))
}

/// True when events at `level` are currently recorded.  This is the
/// whole hot-path guard: one relaxed load and a compare.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= GLOBAL_LEVEL.load(Ordering::Relaxed) && level != Level::Off
}

/// Capacity of an inline string field, chosen so a whole
/// [`EventRecord`] stays comfortably cache-resident.
pub const INLINE_STR_CAP: usize = 48;

/// A fixed-capacity, truncating, `Copy` string — how dynamic text
/// (error messages) rides in an event without allocating.
#[derive(Clone, Copy)]
pub struct InlineStr {
    len: u8,
    buf: [u8; INLINE_STR_CAP],
}

impl InlineStr {
    /// Copies at most [`INLINE_STR_CAP`] bytes of `s`, truncating on a
    /// UTF-8 boundary.
    pub fn new(s: &str) -> InlineStr {
        let mut end = s.len().min(INLINE_STR_CAP);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut buf = [0u8; INLINE_STR_CAP];
        buf[..end].copy_from_slice(&s.as_bytes()[..end]);
        InlineStr { len: end as u8, buf }
    }

    /// The stored (possibly truncated) text.
    pub fn as_str(&self) -> &str {
        // Truncation lands on a char boundary, so this never fails.
        std::str::from_utf8(&self.buf[..self.len as usize]).unwrap_or("")
    }
}

impl fmt::Debug for InlineStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// A field value: `Copy` scalars plus inline text.  No heap.
#[derive(Clone, Copy, Debug)]
pub enum Value {
    /// Unsigned counter / identifier.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Measurement.
    F64(f64),
    /// Flag.
    Bool(bool),
    /// Static string (callsite literal).
    Str(&'static str),
    /// Dynamic text, truncated into the record.
    Text(InlineStr),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Value {
        Value::Str(v)
    }
}
impl From<InlineStr> for Value {
    fn from(v: InlineStr) -> Value {
        Value::Text(v)
    }
}

/// Maximum key/value fields per event.
pub const MAX_FIELDS: usize = 6;

/// One recorded event: entirely `Copy`, sized for the ring.
#[derive(Clone, Copy, Debug)]
pub struct EventRecord {
    /// Global total-order sequence number.
    pub seq: u64,
    /// Wall-clock microseconds since the Unix epoch at record time.
    /// Diagnostic only — never fed back into the system under test.
    pub wall_micros: u64,
    /// Severity.
    pub level: Level,
    /// Subsystem, e.g. `"daemon"`, `"agent"`, `"sim"`.
    pub target: &'static str,
    /// Event name, e.g. `"wal_append_failed"`.
    pub name: &'static str,
    /// Key/value payload; `nfields` of these are live.
    pub fields: [(&'static str, Value); MAX_FIELDS],
    /// Number of live entries in `fields`.
    pub nfields: u8,
}

impl EventRecord {
    fn empty() -> EventRecord {
        EventRecord {
            seq: 0,
            wall_micros: 0,
            level: Level::Off,
            target: "",
            name: "",
            fields: [("", Value::U64(0)); MAX_FIELDS],
            nfields: 0,
        }
    }

    /// Serialises the record as one JSON object (one JSONL line, no
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str(&format!(
            "{{\"seq\":{},\"wall_micros\":{},\"level\":\"{}\",\"target\":\"{}\",\"event\":\"{}\"",
            self.seq,
            self.wall_micros,
            self.level.as_str(),
            self.target,
            self.name
        ));
        for (key, value) in self.fields.iter().take(self.nfields as usize) {
            s.push_str(",\"");
            s.push_str(key);
            s.push_str("\":");
            match value {
                Value::U64(v) => s.push_str(&v.to_string()),
                Value::I64(v) => s.push_str(&v.to_string()),
                Value::F64(v) => {
                    if v.is_finite() {
                        s.push_str(&format!("{v:.6}"));
                    } else {
                        s.push_str("null");
                    }
                }
                Value::Bool(v) => s.push_str(if *v { "true" } else { "false" }),
                Value::Str(v) => push_json_str(&mut s, v),
                Value::Text(v) => push_json_str(&mut s, v.as_str()),
            }
        }
        s.push('}');
        s
    }
}

/// Escapes `v` into `out` as a JSON string literal.
fn push_json_str(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Events retained per thread before overwrite-oldest kicks in.
pub const RING_CAPACITY: usize = 4_096;

/// Fixed-capacity overwrite-oldest event ring.  One per thread; writes
/// are plain stores guarded by the thread-locality of the writer, reads
/// (dump paths) take the registry snapshot under the ring mutex.
struct Ring {
    slots: Box<[EventRecord]>,
    /// Total events ever written; `head % RING_CAPACITY` is the next slot.
    head: usize,
}

impl Ring {
    fn new() -> Ring {
        Ring { slots: vec![EventRecord::empty(); RING_CAPACITY].into_boxed_slice(), head: 0 }
    }

    fn push(&mut self, rec: EventRecord) {
        let idx = self.head % RING_CAPACITY;
        self.slots[idx] = rec;
        self.head += 1;
    }

    /// Live records, oldest first.
    fn drain_ordered(&self) -> Vec<EventRecord> {
        let live = self.head.min(RING_CAPACITY);
        let mut out = Vec::with_capacity(live);
        let start = self.head - live;
        for i in start..self.head {
            out.push(self.slots[i % RING_CAPACITY]);
        }
        out
    }
}

/// All rings ever created, so a dump can reach rings owned by other
/// (possibly parked) threads.  Rings are leaked intentionally: a dying
/// thread's last events are exactly what a post-mortem wants.
static RING_REGISTRY: Mutex<Vec<&'static Mutex<Ring>>> = Mutex::new(Vec::new());

/// Count of events dropped because a ring lock was contended at emit
/// time (writer never blocks; it drops and counts instead).
static CONTENDED_DROPS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_RING: &'static Mutex<Ring> = {
        let ring: &'static Mutex<Ring> = Box::leak(Box::new(Mutex::new(Ring::new())));
        RING_REGISTRY.lock().expect("obs ring registry").push(ring);
        ring
    };
}

/// Events dropped due to emit-time ring contention (dump in progress on
/// this thread's ring).  Diagnostic only.
pub fn contended_drops() -> usize {
    CONTENDED_DROPS.load(Ordering::Relaxed)
}

/// Records one event if `level` is enabled.  Prefer the [`obs_event!`]
/// macro, which builds the field array inline at the callsite.
#[inline]
pub fn record(
    level: Level,
    target: &'static str,
    name: &'static str,
    fields: &[(&'static str, Value)],
) {
    if !enabled(level) {
        return;
    }
    record_always(level, target, name, fields);
}

/// Records unconditionally (no level check) — used by the macro after
/// its own guard, and by tests.
pub fn record_always(
    level: Level,
    target: &'static str,
    name: &'static str,
    fields: &[(&'static str, Value)],
) {
    let mut rec = EventRecord::empty();
    rec.seq = GLOBAL_SEQ.fetch_add(1, Ordering::Relaxed);
    rec.wall_micros = wall_micros();
    rec.level = level;
    rec.target = target;
    rec.name = name;
    let n = fields.len().min(MAX_FIELDS);
    rec.fields[..n].copy_from_slice(&fields[..n]);
    rec.nfields = n as u8;
    THREAD_RING.with(|ring| {
        // The owner thread is the only writer, so this lock is free
        // unless a dump is snapshotting the ring right now; never block
        // the data path on observability — drop the event instead.
        match ring.try_lock() {
            Ok(mut r) => r.push(rec),
            Err(_) => {
                CONTENDED_DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
}

fn wall_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Emit a structured event: `obs_event!(Level::Warn, "agent", "spool_degraded",
/// agent = 3u64, seq = seq, error = obs::InlineStr::new(&msg))`.
///
/// Field values are anything `Into<Value>` — unsigned/signed integers,
/// floats, bools, `&'static str`, or [`InlineStr`] for dynamic text.
/// Expands to a level check plus, when enabled, one ring write; no
/// allocation either way.
#[macro_export]
macro_rules! obs_event {
    ($level:expr, $target:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        let lvl = $level;
        if $crate::obs::enabled(lvl) {
            $crate::obs::record_always(
                lvl,
                $target,
                $name,
                &[$((stringify!($key), $crate::obs::Value::from($val))),*],
            );
        }
    }};
}

/// Snapshot of every registered ring, merged oldest-first by global
/// sequence number.
pub fn snapshot_all() -> Vec<EventRecord> {
    let registry = RING_REGISTRY.lock().expect("obs ring registry");
    let mut all: Vec<EventRecord> = Vec::new();
    for ring in registry.iter() {
        if let Ok(r) = ring.lock() {
            all.extend(r.drain_ordered());
        }
    }
    drop(registry);
    all.sort_by_key(|r| r.seq);
    all
}

/// Snapshot of the *calling thread's* ring only, oldest first.
pub fn snapshot_thread() -> Vec<EventRecord> {
    THREAD_RING.with(|ring| ring.lock().map(|r| r.drain_ordered()).unwrap_or_default())
}

/// Dumps every live ring to `path` as JSONL (one event per line,
/// oldest first).  Creates parent directories.  Returns the number of
/// events written.
pub fn dump_all(path: &std::path::Path) -> std::io::Result<usize> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let events = snapshot_all();
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for ev in &events {
        out.write_all(ev.to_json().as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests in this module share the process-global level; they only
    // ever *raise* it and use distinct targets so parallel test threads
    // cannot confuse each other's records.

    #[test]
    fn level_gating() {
        assert!(!enabled(Level::Off));
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        // Info may be enabled if another test raised the level; only
        // assert the ordering property.
        assert!(Level::Info > Level::Warn);
    }

    #[test]
    fn inline_str_truncates_on_char_boundary() {
        let long = "é".repeat(INLINE_STR_CAP); // 2 bytes each
        let s = InlineStr::new(&long);
        assert!(s.as_str().len() <= INLINE_STR_CAP);
        assert!(s.as_str().chars().all(|c| c == 'é'));
        let short = InlineStr::new("abc");
        assert_eq!(short.as_str(), "abc");
    }

    #[test]
    fn ring_wraps_overwriting_oldest() {
        let mut ring = Ring::new();
        let total = RING_CAPACITY + 257;
        for i in 0..total {
            let mut rec = EventRecord::empty();
            rec.seq = i as u64;
            ring.push(rec);
        }
        let live = ring.drain_ordered();
        assert_eq!(live.len(), RING_CAPACITY);
        // Oldest surviving record is exactly `total - capacity`.
        assert_eq!(live.first().unwrap().seq, (total - RING_CAPACITY) as u64);
        assert_eq!(live.last().unwrap().seq, (total - 1) as u64);
        // Strictly ordered.
        assert!(live.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn macro_records_fields_and_json_escapes() {
        set_level(Level::Trace);
        crate::obs_event!(
            Level::Debug,
            "obs-test",
            "macro_smoke",
            count = 7u64,
            ratio = 0.5f64,
            ok = true,
            kind = "static",
            msg = InlineStr::new("line1\nline\"2\"")
        );
        let mine = snapshot_thread();
        let rec = mine
            .iter()
            .rev()
            .find(|r| r.target == "obs-test" && r.name == "macro_smoke")
            .expect("recorded event");
        assert_eq!(rec.nfields, 5);
        let json = rec.to_json();
        assert!(json.contains("\"count\":7"));
        assert!(json.contains("\"ok\":true"));
        assert!(json.contains("\"kind\":\"static\""));
        assert!(json.contains("\\n"), "newline escaped: {json}");
        assert!(json.contains("\\\""), "quote escaped: {json}");
    }

    #[test]
    fn dump_all_writes_jsonl() {
        set_level(Level::Trace);
        crate::obs_event!(Level::Info, "obs-test", "dump_probe", id = 99u64);
        let dir = std::env::temp_dir().join(format!("obs-dump-{}", std::process::id()));
        let path = dir.join("events.jsonl");
        let n = dump_all(&path).expect("dump");
        assert!(n >= 1);
        let text = std::fs::read_to_string(&path).expect("read dump");
        assert!(text.lines().any(|l| l.contains("\"event\":\"dump_probe\"")));
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "jsonl line: {line}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
