//! # netsim
//!
//! A deterministic discrete-event simulation engine, built for the
//! `edonkey-honeypots` reproduction but domain-agnostic:
//!
//! * [`time`] — the millisecond simulation clock with hour/day views;
//! * [`queue`] — the [`queue::PendingQueue`] abstraction the engine runs on;
//! * [`event`] — a stable (insertion-order tie-breaking) binary-heap queue;
//! * [`calendar`] — a bucketed calendar queue with identical semantics;
//! * [`wheel`] — a hierarchical timing wheel (amortised O(1) push/pop)
//!   with identical semantics, for million-peer populations;
//! * [`engine`] — the event loop: a [`engine::World`] state machine driven
//!   by an [`engine::Engine`] generic over its queue, with causality
//!   enforced by the [`engine::Scheduler`] handle;
//! * [`rng`] — from-scratch `xoshiro256**` with named sub-streams for
//!   component-level reproducibility;
//! * [`dist`] — exponential/Poisson/normal/log-normal/Zipf sampling and the
//!   diurnal activity curve;
//! * [`latency`] — link latency/bandwidth models;
//! * [`metrics`] — bucketed time series and first-seen tracking;
//! * [`obs`] — the structured-event facade and per-thread flight
//!   recorder shared by the whole workspace (see `platform::obs` for
//!   the registry/scraper built on top).
//!
//! Everything is deterministic: a simulation is a pure function of its
//! configuration and one 64-bit seed.

pub mod calendar;
pub mod dist;
pub mod engine;
pub mod event;
pub mod latency;
pub mod metrics;
pub mod obs;
pub mod queue;
pub mod rng;
pub mod time;
pub mod wheel;

pub use calendar::CalendarQueue;
pub use dist::{DiurnalCurve, Zipf};
pub use engine::{Engine, RunOutcome, Scheduler, World};
pub use event::EventQueue;
pub use latency::LatencyModel;
pub use metrics::{BucketSeries, FirstSeen};
pub use queue::PendingQueue;
pub use rng::Rng;
pub use time::SimTime;
pub use wheel::TimingWheel;
