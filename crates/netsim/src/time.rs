//! Simulated time.
//!
//! The simulation clock counts **milliseconds since measurement start** in a
//! `u64`.  The paper reports its figures in hours and days; those are views
//! over the same clock ([`SimTime::as_hours`], [`SimTime::day_index`], …).

use serde::{Deserialize, Serialize};

/// Milliseconds in one second.
pub const MS_PER_SEC: u64 = 1_000;
/// Milliseconds in one minute.
pub const MS_PER_MIN: u64 = 60 * MS_PER_SEC;
/// Milliseconds in one hour.
pub const MS_PER_HOUR: u64 = 60 * MS_PER_MIN;
/// Milliseconds in one day.
pub const MS_PER_DAY: u64 = 24 * MS_PER_HOUR;

/// An instant on the simulation clock (ms since measurement start).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The measurement start.
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    pub fn from_secs(s: u64) -> Self {
        SimTime(s * MS_PER_SEC)
    }

    pub fn from_mins(m: u64) -> Self {
        SimTime(m * MS_PER_MIN)
    }

    pub fn from_hours(h: u64) -> Self {
        SimTime(h * MS_PER_HOUR)
    }

    pub fn from_days(d: u64) -> Self {
        SimTime(d * MS_PER_DAY)
    }

    pub fn as_millis(&self) -> u64 {
        self.0
    }

    pub fn as_secs(&self) -> f64 {
        self.0 as f64 / MS_PER_SEC as f64
    }

    pub fn as_hours(&self) -> f64 {
        self.0 as f64 / MS_PER_HOUR as f64
    }

    pub fn as_days(&self) -> f64 {
        self.0 as f64 / MS_PER_DAY as f64
    }

    /// Zero-based index of the measurement day containing this instant.
    pub fn day_index(&self) -> u64 {
        self.0 / MS_PER_DAY
    }

    /// Zero-based index of the measurement hour containing this instant.
    pub fn hour_index(&self) -> u64 {
        self.0 / MS_PER_HOUR
    }

    /// Hour of the (simulated local) day in `[0, 24)`, given a fixed offset
    /// between the simulation clock and local wall time.
    pub fn hour_of_day(&self, local_offset_hours: u64) -> u64 {
        (self.hour_index() + local_offset_hours) % 24
    }

    /// Saturating addition of a duration in milliseconds.
    pub fn plus_millis(&self, ms: u64) -> SimTime {
        SimTime(self.0.saturating_add(ms))
    }

    pub fn plus_secs(&self, s: u64) -> SimTime {
        self.plus_millis(s * MS_PER_SEC)
    }
}

impl std::fmt::Debug for SimTime {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fm, "t+{:.3}s", self.as_secs())
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = self.0 / MS_PER_DAY;
        let h = (self.0 % MS_PER_DAY) / MS_PER_HOUR;
        let m = (self.0 % MS_PER_HOUR) / MS_PER_MIN;
        let s = (self.0 % MS_PER_MIN) / MS_PER_SEC;
        write!(fm, "d{d} {h:02}:{m:02}:{s:02}")
    }
}

impl std::ops::Add<u64> for SimTime {
    type Output = SimTime;
    /// `time + ms`.
    fn add(self, ms: u64) -> SimTime {
        self.plus_millis(ms)
    }
}

impl std::ops::Sub for SimTime {
    type Output = u64;
    /// Elapsed milliseconds between two instants (saturating).
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_days(2).as_millis(), 2 * MS_PER_DAY);
        assert_eq!(SimTime::from_hours(3).as_hours(), 3.0);
        assert_eq!(SimTime::from_secs(90).as_secs(), 90.0);
        assert_eq!(SimTime::from_mins(2).as_millis(), 120_000);
    }

    #[test]
    fn day_and_hour_indexing() {
        let t = SimTime::from_hours(49); // day 2, 01:00
        assert_eq!(t.day_index(), 2);
        assert_eq!(t.hour_index(), 49);
        assert_eq!(t.hour_of_day(0), 1);
        assert_eq!(t.hour_of_day(23), 0);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_days(1) + (2 * MS_PER_HOUR + 3 * MS_PER_MIN + 4 * MS_PER_SEC);
        assert_eq!(t.to_string(), "d1 02:03:04");
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime(5) - SimTime(9), 0);
        assert_eq!(SimTime(u64::MAX).plus_millis(10).0, u64::MAX);
    }
}
