//! Property-based tests of the simulation engine's invariants.

use proptest::prelude::*;

use netsim::dist::{poisson, Zipf};
use netsim::engine::{Engine, Scheduler, World};
use netsim::metrics::{BucketSeries, FirstSeen};
use netsim::{CalendarQueue, EventQueue, Rng, SimTime, TimingWheel};

/// Drives an arbitrary push/pop schedule through both queue
/// implementations and asserts they yield the same `(time, payload)`
/// sequence.  `ops` pairs a push/pop choice with a delay; delays range far
/// beyond the calendar's span (4 × 50 = 200 ms) so wrap-around laps are
/// exercised.  Pops feed the clock forward, keeping pushes causal.
fn assert_queues_agree(ops: &[(bool, u64)]) {
    let mut cal = CalendarQueue::new(4, 50);
    let mut heap = EventQueue::new();
    let mut clock = 0u64;
    for (step, &(push, delay)) in ops.iter().enumerate() {
        if push || cal.is_empty() {
            let t = SimTime(clock + delay);
            cal.push(t, step);
            heap.push(t, step);
        } else {
            let a = cal.pop();
            let b = heap.pop();
            assert_eq!(a, b, "queues diverged at op {step}");
            clock = a.expect("queue was non-empty").0.as_millis();
        }
    }
    loop {
        let a = cal.pop();
        let b = heap.pop();
        assert_eq!(a, b, "queues diverged while draining");
        if a.is_none() {
            break;
        }
    }
}

/// One level-4 rotation of the hierarchical timing wheel: events beyond
/// `now + WHEEL_SPAN` land in its unsorted overflow pool, so delays past
/// this bound exercise the overflow → wheel refill path.
const WHEEL_SPAN: u64 = 1 << 30;

/// Drives an arbitrary schedule through all three queue implementations —
/// binary heap (the ordering reference), calendar, timing wheel — and
/// asserts identical `(time, payload)` sequences.  Ops mix near pushes
/// (with deliberate ties), far-future pushes beyond the wheel's top
/// rotation (overflow + calendar wraparound), plain pops, and
/// pop→`unpop`→pop probes which must return the same front event twice.
/// The calendar span here is 16 × 4096 ≈ 65 s so far-future drains stay
/// a bounded number of laps.
fn assert_three_queues_agree(ops: &[(u8, u64)]) {
    let mut heap = EventQueue::new();
    let mut cal = CalendarQueue::new(16, 4_096);
    let mut wheel = TimingWheel::new();
    let mut clock = 0u64;
    for (step, &(choice, raw)) in ops.iter().enumerate() {
        let do_push = matches!(choice % 8, 0..=4) || heap.is_empty();
        if do_push {
            let delay = match choice % 8 {
                4 => WHEEL_SPAN + raw % (3 * WHEEL_SPAN),
                _ if raw % 5 == 0 => 0,
                _ => raw % 50_000,
            };
            let t = SimTime(clock + delay);
            heap.push(t, step);
            cal.push(t, step);
            wheel.push(t, step);
        } else if choice % 8 == 7 {
            // Pop the front, park it back with unpop, and pop again: the
            // parked event must stay at the front of its timestamp's FIFO
            // class in every implementation.
            let a = heap.pop();
            assert_eq!(a, cal.pop(), "heap vs calendar diverged at op {step}");
            assert_eq!(a, wheel.pop(), "heap vs wheel diverged at op {step}");
            let (t, v) = a.expect("queue was non-empty");
            clock = t.as_millis();
            heap.unpop(t, v);
            cal.unpop(t, v);
            wheel.unpop(t, v);
            let again = Some((t, v));
            assert_eq!(heap.pop(), again, "heap unpop lost front position at op {step}");
            assert_eq!(cal.pop(), again, "calendar unpop lost front position at op {step}");
            assert_eq!(wheel.pop(), again, "wheel unpop lost front position at op {step}");
        } else {
            let a = heap.pop();
            assert_eq!(a, cal.pop(), "heap vs calendar diverged at op {step}");
            assert_eq!(a, wheel.pop(), "heap vs wheel diverged at op {step}");
            clock = a.expect("queue was non-empty").0.as_millis();
        }
    }
    loop {
        let a = heap.pop();
        assert_eq!(a, cal.pop(), "heap vs calendar diverged while draining");
        assert_eq!(a, wheel.pop(), "heap vs wheel diverged while draining");
        if a.is_none() {
            break;
        }
    }
}

/// Deterministic companion to `all_three_queues_agree_on_any_schedule`:
/// same ground (overflow wraparound, unpop probes, tie classes) on fixed
/// seeds, exercised even when the proptest harness is unavailable.
#[test]
fn all_three_queues_agree_on_seeded_schedule() {
    let mut rng = Rng::seed_from(0x5EED_0007);
    for _ in 0..10 {
        let ops: Vec<(u8, u64)> =
            (0..600).map(|_| (rng.below(256) as u8, rng.below(u64::MAX / 4))).collect();
        assert_three_queues_agree(&ops);
    }
}

/// Deterministic companion to `calendar_queue_matches_heap_on_any_schedule`
/// covering the same ground (wrap-around, tie classes, interleaving) on a
/// fixed seed, so the equivalence is still exercised when the proptest
/// harness is unavailable.
#[test]
fn calendar_queue_matches_heap_on_seeded_schedule() {
    let mut rng = Rng::seed_from(0xED0_2009);
    for round in 0..20 {
        let ops: Vec<(bool, u64)> = (0..800)
            .map(|_| {
                let push = rng.chance(0.55);
                // Mostly tight clusters with occasional multi-lap jumps and
                // deliberate ties (delay 0).
                let delay = match rng.below(10) {
                    0 => 0,
                    1..=6 => rng.below(120),
                    7 | 8 => rng.below(1_000),
                    _ => rng.below(5_000),
                };
                (push, delay)
            })
            .collect();
        assert_queues_agree(&ops);
        let _ = round;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calendar_queue_matches_heap_on_any_schedule(
        ops in prop::collection::vec((any::<bool>(), 0u64..1_500), 0..400),
    ) {
        // Delays up to 1 500 ms against a 200 ms calendar span: most pushes
        // wrap at least once, many wrap several laps.
        assert_queues_agree(&ops);
    }

    #[test]
    fn all_three_queues_agree_on_any_schedule(
        ops in prop::collection::vec((any::<u8>(), any::<u64>()), 0..300),
    ) {
        // Choice 4 maps to a far-future push past the wheel's top rotation;
        // the rest mix near pushes (ties included), pops, and unpop probes.
        assert_three_queues_agree(&ops);
    }

    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), i);
        }
        let mut prev: Option<(SimTime, usize)> = None;
        let mut popped = 0;
        while let Some((t, idx)) = q.pop() {
            popped += 1;
            if let Some((pt, pidx)) = prev {
                prop_assert!(t >= pt, "times must be non-decreasing");
                if t == pt {
                    prop_assert!(idx > pidx, "ties must preserve insertion order");
                }
            }
            prop_assert_eq!(SimTime(times[idx]), t, "payload must carry its own time");
            prev = Some((t, idx));
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn rng_below_in_bounds(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn rng_sample_indices_invariants(seed in any::<u64>(), n in 1usize..500, frac in 0.0f64..1.0) {
        let k = ((n as f64) * frac) as usize;
        let mut rng = Rng::seed_from(seed);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k);
        let set: std::collections::HashSet<_> = s.iter().collect();
        prop_assert_eq!(set.len(), k);
        prop_assert!(s.iter().all(|&i| i < n));
    }

    #[test]
    fn zipf_probabilities_form_a_distribution(n in 1usize..2_000, s in 0.0f64..2.5) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|k| z.probability(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum {total}");
        // Monotone non-increasing in rank.
        for k in 1..n.min(50) {
            prop_assert!(z.probability(k) <= z.probability(k - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_samples_in_range(seed in any::<u64>(), n in 1usize..500) {
        let z = Zipf::new(n, 1.0);
        let mut rng = Rng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn poisson_is_finite_and_plausible(seed in any::<u64>(), lambda in 0.0f64..2_000.0) {
        let mut rng = Rng::seed_from(seed);
        let x = poisson(&mut rng, lambda);
        // A draw 60σ above the mean indicates a broken sampler, not luck.
        prop_assert!((x as f64) < lambda + 60.0 * lambda.sqrt() + 60.0);
    }

    #[test]
    fn bucket_series_total_is_preserved(events in prop::collection::vec((0u64..100_000_000, 1u64..5), 0..200)) {
        let mut s = BucketSeries::hourly();
        let mut expect = 0;
        for &(t, n) in &events {
            s.add(SimTime(t), n);
            expect += n;
        }
        prop_assert_eq!(s.total(), expect);
        let cum = s.cumulative(s.len());
        if let Some(&last) = cum.last() {
            prop_assert_eq!(last, expect);
        }
    }

    #[test]
    fn first_seen_distinct_matches_set(keys in prop::collection::vec(0u32..50, 0..300)) {
        let mut fs = FirstSeen::new();
        for (i, &k) in keys.iter().enumerate() {
            fs.observe(k, SimTime(i as u64));
        }
        let expect: std::collections::HashSet<_> = keys.iter().collect();
        prop_assert_eq!(fs.distinct(), expect.len());
        // New-per-bucket sums to distinct.
        let per: u64 = fs.new_per_bucket(1_000, 0).iter().sum();
        prop_assert_eq!(per as usize, expect.len());
    }

    #[test]
    fn engine_handles_every_scheduled_event_before_horizon(
        times in prop::collection::vec(0u64..10_000, 1..100),
        horizon in 1u64..12_000,
    ) {
        struct Count(u64);
        impl World for Count {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), _: &mut Scheduler<'_, ()>) {
                self.0 += 1;
            }
        }
        let mut engine: Engine<Count> = Engine::new();
        for &t in &times {
            engine.schedule(SimTime(t), ());
        }
        let mut world = Count(0);
        engine.run_until(&mut world, SimTime(horizon));
        let expect = times.iter().filter(|&&t| t < horizon).count() as u64;
        prop_assert_eq!(world.0, expect);
    }
}
