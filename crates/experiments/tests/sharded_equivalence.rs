//! The lane-sharding determinism guarantee on the paper's calibrated
//! scenarios: the rayon-parallel sharded execution and its lane-ordered
//! sequential reference must produce **bit-identical** measurement logs —
//! the same discipline `determinism.rs` pins for the queue choice.
//!
//! The greedy scenario exercises the other half of the contract: a greedy
//! honeypot couples honeypots through the shared advertised list, so the
//! scenario must fall back to the coupled engine unchanged.

use edonkey_experiments::scenarios;
use edonkey_sim::lanes::{run_sharded, run_sharded_reference};
use edonkey_sim::{run_scenario, ExecMode};

#[test]
fn distributed_sharded_matches_sequential_reference() {
    let config = scenarios::distributed(5, 0.01);
    let par = run_sharded(config.clone());
    let seq = run_sharded_reference(config);

    // Record-level equality first, for a readable failure…
    assert_eq!(par.log.records, seq.log.records, "records diverged");
    assert_eq!(par.log.shared_lists, seq.log.shared_lists);
    assert_eq!(par.log.peer_names, seq.log.peer_names);
    assert_eq!(par.log.distinct_peers, seq.log.distinct_peers);

    // …then whole-struct equality via the Debug rendering, which covers
    // every remaining field without requiring PartialEq on all of them.
    assert_eq!(format!("{:?}", par.log), format!("{:?}", seq.log), "logs diverged");
    assert_eq!(par.relaunches, seq.relaunches);
    assert_eq!(par.stats.arrivals, seq.stats.arrivals);
    assert_eq!(par.stats.sessions, seq.stats.sessions);

    // And the sharded output is a sound measurement in its own right.
    assert!(par.log.validate().is_empty());
    assert_eq!(par.log.honeypots.len(), 24, "all 24 honeypots present after the merge");
    assert!(par.log.records.len() > 100, "lanes must produce real traffic");
    // Lane offsets preserve the scenario's honeypot order: id i keeps the
    // alternating strategy layout of the distributed setup.
    for (i, hp) in par.log.honeypots.iter().enumerate() {
        assert_eq!(hp.id.0 as usize, i, "dense ids after merge");
    }
}

#[test]
fn greedy_sharded_falls_back_to_coupled_unchanged() {
    let sharded_cfg = {
        let mut c = scenarios::greedy(5, 0.01);
        c.exec = ExecMode::Sharded;
        c
    };
    let coupled_cfg = scenarios::greedy(5, 0.01);

    let par = run_sharded(sharded_cfg.clone());
    let seq = run_sharded_reference(sharded_cfg.clone());
    let coupled = run_scenario(coupled_cfg);

    assert_eq!(format!("{:?}", par.log), format!("{:?}", seq.log));
    // One greedy honeypot = one lane = the coupled engine, so all three
    // executions are the same computation.
    assert_eq!(
        format!("{:?}", par.log),
        format!("{:?}", coupled.log),
        "greedy must stay single-lane: sharded output == coupled output"
    );
    assert!(par.log.validate().is_empty());

    // The dispatch path agrees with the direct call.
    let dispatched = run_scenario(sharded_cfg);
    assert_eq!(format!("{:?}", dispatched.log), format!("{:?}", par.log));
}
