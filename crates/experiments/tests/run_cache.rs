//! The content-addressed run cache: hits are guaranteed replays of the
//! exact simulation the config describes, misses re-run, corrupt entries
//! fall back to a fresh run, and the key itself is pinned so it cannot
//! drift between processes or releases without a schema bump.

use edonkey_experiments::{cache_key, Measurement, Options, RunCache};
use edonkey_sim::{run_scenario, ScenarioConfig};

fn temp_cache(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("edhp-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn store_then_load_roundtrips_and_misses_on_config_change() {
    let dir = temp_cache("roundtrip");
    let cache = RunCache::new(dir.clone());
    let config = ScenarioConfig::tiny(7);
    assert!(cache.load(&config).is_none(), "cold cache must miss");

    let out = run_scenario(config.clone());
    cache.store(&config, &out.log).expect("store");
    let hit = cache.load(&config).expect("warm cache must hit");
    assert_eq!(format!("{:?}", hit), format!("{:?}", out.log), "hit must replay bit-identically");

    // Any config change is a different key, hence a miss.
    let mut reseeded = config.clone();
    reseeded.seed = 8;
    assert!(cache.load(&reseeded).is_none(), "different seed must miss");
    let mut rescaled = config;
    rescaled.population.rate_per_popularity *= 2.0;
    assert!(cache.load(&rescaled).is_none(), "different rate must miss");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entry_is_ignored_and_rerun() {
    let dir = temp_cache("corrupt");
    let cache = RunCache::new(dir.clone());
    let config = ScenarioConfig::tiny(9);

    let out = run_scenario(config.clone());
    let path = cache.store(&config, &out.log).expect("store");
    assert_eq!(path, cache.entry_path(&config));

    // Truncate-and-garble the entry: load must treat it as a miss, not
    // trust it or panic.
    std::fs::write(&path, b"EDHPnot really a measurement log").expect("corrupt");
    assert!(cache.load(&config).is_none(), "corrupt entry must read as a miss");

    // A re-store heals the entry.
    cache.store(&config, &out.log).expect("re-store");
    assert!(cache.load(&config).is_some());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn runner_populates_then_reuses_the_cache() {
    let dir = temp_cache("runner");
    let opts = Options {
        scale: 0.01,
        seed: 5,
        samples: 10,
        cache_dir: Some(dir.clone()),
        ..Default::default()
    };
    // First run: miss → simulate → store.
    let fresh = opts.run(Measurement::Distributed);
    let entry = opts.run_cache().entry_path(&opts.scenario(Measurement::Distributed));
    assert!(entry.exists(), "first run must populate {}", entry.display());

    // Second run: hit → identical log without re-simulating.
    let cached = opts.run(Measurement::Distributed);
    assert_eq!(format!("{:?}", cached), format!("{:?}", fresh));

    // --no-cache bypasses the warm entry but still produces the same
    // deterministic log.
    let uncached = Options { no_cache: true, ..opts.clone() }.run(Measurement::Distributed);
    assert_eq!(format!("{:?}", uncached), format!("{:?}", fresh));

    let _ = std::fs::remove_dir_all(&dir);
}

/// The golden key: pins the full hashing pipeline (domain prefix, schema
/// and storage version bytes, `Debug` rendering of the config) across
/// processes and platforms.  If this test fails after an intentional
/// config/format change, bump `CACHE_SCHEMA` in `cache.rs` and update the
/// constant — silent drift would alias old cache entries to new configs.
#[test]
fn golden_key_is_stable_across_processes() {
    let key = cache_key(&ScenarioConfig::tiny(1));
    assert_eq!(key.len(), 32);
    assert!(key.bytes().all(|b| b.is_ascii_hexdigit()));
    assert_eq!(key, GOLDEN_TINY_1, "cache key drifted — see test doc comment");
}

const GOLDEN_TINY_1: &str = "752537b63dcb701ab69db4f9070db70e";
