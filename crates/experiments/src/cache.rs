//! Content-addressed on-disk cache of completed simulation runs.
//!
//! Every figure binary and `--bin all` needs a `MeasurementLog` for some
//! `ScenarioConfig`; at paper scale a single distributed run simulates
//! tens of millions of events, and the binaries historically re-simulated
//! from scratch on every invocation.  This cache keys completed runs by a
//! **stable hash of the full configuration** plus the EDHP format
//! [`honeypot::storage::VERSION`], storing each log as
//! `<cache-dir>/<hash>.edhp`:
//!
//! * identical configs (same seed, scale, knobs, execution mode) across
//!   invocations — and across *binaries* — reuse one run;
//! * any config change, however small, changes the key (a miss, never a
//!   wrong hit);
//! * bumping the storage format or the key schema invalidates everything.
//!
//! The key hashes the config's `Debug` rendering with the MD4 the
//! platform already ships.  `ScenarioConfig` is plain data — scalars,
//! enums, vectors; no maps — so its `Debug` output is a deterministic,
//! process-independent function of the value (floats print
//! shortest-roundtrip).  A golden-hash test pins cross-process stability.
//!
//! Corrupt or truncated entries are handled like a corrupt `--load` file:
//! the loader validates, reports, and falls back to a fresh simulation
//! (which then overwrites the bad entry).

use std::path::{Path, PathBuf};

use edonkey_proto::md4::Md4;
use edonkey_sim::ScenarioConfig;
use honeypot::MeasurementLog;

/// Cache key schema version: bump when the key derivation itself changes.
/// 2: `ScenarioConfig` grew `server_capture`, which appears in the hashed
/// `Debug` rendering — old keys would alias configs that now differ.
const CACHE_SCHEMA: u32 = 2;

/// The stable cache key of a configuration (32 hex chars).
pub fn cache_key(config: &ScenarioConfig) -> String {
    let mut h = Md4::new();
    h.update(b"edhp-run-cache/");
    h.update(&CACHE_SCHEMA.to_le_bytes());
    h.update(&honeypot::STORAGE_VERSION.to_le_bytes());
    h.update(format!("{config:?}").as_bytes());
    let digest = h.finalize();
    let mut out = String::with_capacity(32);
    for b in digest {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
        out.push(char::from_digit(u32::from(b & 0xF), 16).expect("nibble"));
    }
    out
}

/// A directory of cached runs.
#[derive(Clone, Debug)]
pub struct RunCache {
    dir: PathBuf,
}

impl RunCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: PathBuf) -> Self {
        RunCache { dir }
    }

    /// The default cache location, `target/run-cache` at the workspace
    /// root — inside `target/` so `cargo clean` wipes it together with
    /// every other build product.
    pub fn at_default_location() -> Self {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        RunCache::new(root.join("target").join("run-cache"))
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where `config`'s entry lives (whether or not it exists).
    pub fn entry_path(&self, config: &ScenarioConfig) -> PathBuf {
        self.dir.join(format!("{}.edhp", cache_key(config)))
    }

    /// Looks `config` up, returning its cached log on a clean hit.
    ///
    /// Misses and *any* failure — unreadable file, bad magic, truncation,
    /// failed validation — return `None` so the caller falls back to a
    /// fresh simulation; failures are reported on stderr.
    pub fn load(&self, config: &ScenarioConfig) -> Option<MeasurementLog> {
        let path = self.entry_path(config);
        if !path.exists() {
            return None;
        }
        match honeypot::storage::load(&path) {
            Ok(log) => {
                // storage::load validates decoded indices already, but be
                // explicit: a cache must never serve a log a fresh run
                // could not have produced.
                if log.validate().is_empty() {
                    Some(log)
                } else {
                    eprintln!(
                        "[cache] {} decodes but fails validation; ignoring entry",
                        path.display()
                    );
                    None
                }
            }
            Err(e) => {
                eprintln!("[cache] {} unreadable ({e}); ignoring entry", path.display());
                None
            }
        }
    }

    /// Stores `log` as `config`'s entry (write-to-temp + rename, so a
    /// crashed writer can only ever leave a stray temp file, not a
    /// half-written entry under the final name).
    ///
    /// The temp name is unique per *call* — pid plus a process-wide
    /// counter — so two figure binaries (or two threads of one) storing
    /// the same entry concurrently never interleave writes into a shared
    /// temp file; each writes its own and the atomic renames race
    /// harmlessly, last one wins with a complete file either way.
    pub fn store(&self, config: &ScenarioConfig, log: &MeasurementLog) -> std::io::Result<PathBuf> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static STORE_SERIAL: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(&self.dir)?;
        let path = self.entry_path(config);
        let tmp = self.dir.join(format!(
            "{}.edhp.tmp-{}-{}",
            cache_key(config),
            std::process::id(),
            STORE_SERIAL.fetch_add(1, Ordering::Relaxed)
        ));
        honeypot::storage::save(log, &tmp).map_err(|e| match e {
            honeypot::StorageError::Io(io) => io,
            other => std::io::Error::other(other.to_string()),
        })?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_stable_within_a_process() {
        let c = ScenarioConfig::tiny(42);
        assert_eq!(cache_key(&c), cache_key(&c.clone()));
        assert_eq!(cache_key(&c).len(), 32);
        assert!(cache_key(&c).bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn concurrent_writers_never_corrupt_an_entry() {
        // Two figure binaries can decide to fill the same cache miss at
        // once.  Per-call temp names make their writes independent; the
        // final renames race, but whichever wins, the entry under the
        // final name must always be a complete, loadable log.
        let config = ScenarioConfig::tiny(9);
        let log = edonkey_sim::run_scenario(config.clone()).log;
        let dir = std::env::temp_dir().join(format!("edhp-cache-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = RunCache::new(dir.clone());

        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..5 {
                        cache.store(&config, &log).unwrap();
                    }
                });
            }
        });

        let loaded = cache.load(&config).expect("entry must be a clean hit");
        assert_eq!(loaded.records.len(), log.records.len());
        assert_eq!(loaded.distinct_peers, log.distinct_peers);
        // No temp litter: every writer renamed its own file away.
        let stray = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .count();
        assert_eq!(stray, 0, "temp files must not survive successful stores");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn any_config_change_changes_the_key() {
        let base = ScenarioConfig::tiny(42);
        let mut seed = base.clone();
        seed.seed = 43;
        let mut scale = base.clone();
        scale.population.rate_per_popularity *= 1.000001;
        let mut exec = base.clone();
        exec.exec = edonkey_sim::ExecMode::Sharded;
        let mut capture = base.clone();
        capture.server_capture = Some(edonkey_sim::ServerCaptureConfig::default());
        let mut capture_knob = capture.clone();
        capture_knob.server_capture.as_mut().unwrap().status_interval_ms += 1;
        let keys = [
            cache_key(&base),
            cache_key(&seed),
            cache_key(&scale),
            cache_key(&exec),
            cache_key(&capture),
            cache_key(&capture_knob),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b, "distinct configs must have distinct keys");
            }
        }
    }
}
