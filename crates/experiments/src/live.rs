//! The `--live-loopback` demo: a real-TCP control-plane measurement.
//!
//! Everything else in this crate measures the *simulated* eDonkey world.
//! This module instead deploys the live platform — manager daemon, eDonkey
//! server and N supervised agents, all over loopback TCP — drives a little
//! scripted-peer traffic at the honeypots, and finalizes through the same
//! merge/anonymise pipeline.  It is a demo and smoke path, not a paper
//! artefact: its value is showing the control plane move real bytes and
//! proving (by journal replay) that the transport was lossless.

use std::path::PathBuf;
use std::time::Duration;

use edonkey_platform::{
    CheckpointOptions, DaemonConfig, FaultPlan, LoopbackDeployment, LoopbackOptions, LoopbackSpec,
    PlatformMetrics,
};
use edonkey_proto::FileId;
use honeypot::{AdvertisedFile, ContentStrategy, FileStrategy, MeasurementLog};
use netsim::SimTime;

/// Durability knobs for the live demo (`--spool-dir`,
/// `--checkpoint-interval`): agents spool chunks under `dir/spool`
/// before sending and the manager snapshots supervision state plus its
/// chunk WAL under `dir/ckpt`, so a crashed side replays instead of
/// losing the run.
#[derive(Clone, Debug)]
pub struct LiveDurability {
    /// Root directory for the spools and the checkpoint.
    pub dir: PathBuf,
    /// Snapshot cadence in milliseconds (the WAL is written continuously
    /// regardless; `None` keeps the default).
    pub checkpoint_interval_ms: Option<u64>,
}

impl LiveDurability {
    /// The daemon-side checkpoint configuration.
    fn checkpoint(&self) -> CheckpointOptions {
        let mut opts = CheckpointOptions::new(self.dir.join("ckpt"));
        if let Some(ms) = self.checkpoint_interval_ms {
            opts.interval_ms = ms;
        }
        opts
    }
}

/// Result of the live loopback demo.
pub struct LiveDemo {
    pub log: MeasurementLog,
    pub metrics: PlatformMetrics,
    /// `None` when the journal replay reproduced the live measurement
    /// exactly (the expected outcome); a description of the first
    /// divergence otherwise.
    pub divergence: Option<String>,
}

/// Deploys `agents` supervised honeypots (one of them crash-injected when
/// `inject_crash`), drives one scripted download against each, and
/// finalizes the measurement.  With `durability`, the whole run is
/// crash-safe: a manager crash is additionally injected after round 1 and
/// the recovered daemon must carry the measurement through unharmed.
pub fn run_live_loopback(
    agents: usize,
    seed: u64,
    inject_crash: bool,
    durability: Option<&LiveDurability>,
) -> std::io::Result<LiveDemo> {
    assert!(agents >= 1, "at least one agent");
    let specs: Vec<LoopbackSpec> = (0..agents)
        .map(|i| {
            let fault = if inject_crash && i == agents - 1 {
                FaultPlan { kill_after_chunk: Some(0), ..FaultPlan::default() }
            } else {
                FaultPlan::default()
            };
            LoopbackSpec {
                content: ContentStrategy::NoContent,
                files: FileStrategy::Fixed(vec![AdvertisedFile::new(
                    demo_file(i),
                    format!("live demo file {i}.avi"),
                    42_000_000,
                )]),
                fault,
                impair: None,
                spool_faults: None,
            }
        })
        .collect();

    let daemon = DaemonConfig {
        checkpoint: durability.map(LiveDurability::checkpoint),
        ..DaemonConfig::default()
    };
    let spool_dir = durability.map(|d| d.dir.join("spool"));
    let opts = LoopbackOptions { daemon, seed, spool_dir, ..LoopbackOptions::default() };
    let mut deployment = LoopbackDeployment::start(specs, opts)?;
    if !deployment.wait_ready(Duration::from_secs(10)) {
        return Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "agents never became ready"));
    }

    for i in 0..agents as u32 {
        deployment.drive_download(&format!("demo-peer-{i}"), i, demo_file(i as usize), 1, &[]);
    }
    deployment.wait_chunks(agents as u64, Duration::from_secs(10));

    if durability.is_some() {
        // The durable path earns its keep: kill the manager outright,
        // recover a fresh one from the checkpoint + WAL, and keep
        // measuring.  Without the WAL the merges so far would be gone and
        // the replay check below would fail.
        std::thread::sleep(Duration::from_millis(300));
        deployment.crash_daemon();
        deployment.recover_daemon()?;
        if !deployment.wait_ready(Duration::from_secs(30)) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "agents never re-registered after manager recovery",
            ));
        }
        deployment.drive_download("demo-peer-postcrash", 0, demo_file(0), 1, &[]);
        deployment.wait_chunks(agents as u64 + 1, Duration::from_secs(20));
    }

    if inject_crash {
        // Wait for the supervision loop to notice the crash and bring the
        // agent back, then hit it again so the resumed stream carries data.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while deployment.daemon().relaunch_count() < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        deployment.wait_ready(Duration::from_secs(10));
        let last = agents as u32 - 1;
        deployment.drive_download("demo-peer-revisit", last, demo_file(agents - 1), 1, &[]);
        deployment.wait_chunks(agents as u64 + 1, Duration::from_secs(10));
    }

    let outcome = deployment.finish(SimTime::from_secs(60), 4, 1, Duration::from_secs(5));
    let divergence = outcome.replay_divergence();
    Ok(LiveDemo { log: outcome.log, metrics: outcome.metrics, divergence })
}

fn demo_file(i: usize) -> FileId {
    FileId::from_seed(format!("live-demo-{i}").as_bytes())
}
