//! The two calibrated measurement scenarios of the paper's evaluation
//! (§IV):
//!
//! * **distributed** — 24 honeypots on one large server for 32 days, all
//!   advertising the same four files (a movie, a song, a linux
//!   distribution and a text); honeypots with even index answer nothing,
//!   odd ones send random content (two groups of 12, as in the paper);
//! * **greedy** — a single honeypot for 15 days that starts from three
//!   seed files, adopts every file seen in contacting peers' shared lists
//!   during day 1, then freezes its (~3,000-file) list.
//!
//! Calibration targets are the paper's published magnitudes (Table I and
//! Figs. 2–12); see `EXPERIMENTS.md` for paper-vs-measured values.

use edonkey_sim::catalog::FileClass;
use edonkey_sim::{
    BehaviorConfig, BlacklistConfig, CatalogConfig, ExecMode, HoneypotSetup, PopulationConfig,
    QueueKind, RobotConfig, ScenarioConfig, ServerCaptureConfig,
};
use honeypot::ContentStrategy;
use netsim::time::{MS_PER_HOUR, MS_PER_MIN, MS_PER_SEC};
use netsim::{DiurnalCurve, SimTime};

/// Default master seed of the published experiments.
pub const DEFAULT_SEED: u64 = 0xED0_2009;

/// Number of honeypots in the distributed measurement.
pub const DISTRIBUTED_HONEYPOTS: usize = 24;
/// Duration of the distributed measurement (the paper ran October 2008,
/// reported as 32 days in Table I).
pub const DISTRIBUTED_DAYS: u64 = 32;
/// Duration of the greedy measurement (first two weeks of November 2008).
pub const GREEDY_DAYS: u64 = 15;
/// Duration of the server-side capture ("ten weeks in the life of an
/// eDonkey server" ran 2007-02-09 → 2007-04-20: ten weeks).
pub const SERVER_CAPTURE_DAYS: u64 = 70;

/// Picks, per file class, the most popular catalog file of that class —
/// the distributed measurement's "a movie, a song, a linux distribution
/// and a text".
fn pick_four_files(catalog: &edonkey_sim::Catalog) -> Vec<u32> {
    let mut best: [Option<(f64, u32)>; 4] = [None; 4];
    for i in 0..catalog.len() as u32 {
        let f = catalog.file(i);
        let slot = match f.class {
            FileClass::Video => 0,
            FileClass::Audio => 1,
            FileClass::Archive => 2,
            FileClass::Document => 3,
        };
        if best[slot].is_none_or(|(p, _)| f.popularity > p) {
            best[slot] = Some((f.popularity, i));
        }
    }
    best.iter().filter_map(|b| b.map(|(_, i)| i)).collect()
}

/// Builds the distributed scenario at volume `scale` (1.0 = paper scale).
pub fn distributed(seed: u64, scale: f64) -> ScenarioConfig {
    let catalog = CatalogConfig {
        // ~30 k reachable files: with ~400 k shared-list draws over a
        // month, the observable universe saturates near Table I's 28,007
        // distinct files.
        n_files: 30_000,
        zipf_exponent: 0.45,
        popularity_sigma: 1.1,
        // Class mix tuned for a ≈330 MB mean file size (Table I: 9 TB /
        // 28 k files).
        class_weights: [0.32, 0.36, 0.09, 0.23],
        hit_count: 0,
        hit_multiplier: 1.0,
        dead_fraction: 0.10,
        dead_multiplier: 0.002,
    };
    let mut config = ScenarioConfig {
        seed,
        duration: SimTime::from_days(DISTRIBUTED_DAYS),
        catalog,
        honeypots: Vec::new(),
        population: PopulationConfig {
            rate_per_popularity: 0.0, // normalised below
            daily_decay: 0.976,
            // Amplitude 0.9 after retry-traffic damping yields the strong
            // day/night swing of Fig. 4.
            diurnal: DiurnalCurve { peak_hour: 15.0, amplitude: 0.85 },
            local_offset_hours: 9.0,
            wanted_files_mean: 1.25,
            share_list_prob: 0.35,
            shared_list_mean: 11.0,
            arrival_tick_ms: 5 * MS_PER_MIN,
        },
        behavior: BehaviorConfig {
            hello_only_prob: 0.30,
            // Heavy-tailed provider fan-out: most peers try one or two
            // sources, a fat tail contacts everything.  This single knob
            // carries both Fig. 10's spread and the ~30 % of peers that
            // never touch one strategy group (Figs. 5-6).
            subset_mean: 2.6,
            subset_all_prob: 0.13,
            // Re-ask timeout only moderately above the ~11 s three-block
            // transfer: that ratio is exactly the top peer's rc/nc pacing
            // gap in Figs. 8–9 (paper: ≈1.4×).
            nc_timeout_ms: 15 * MS_PER_SEC,
            nc_timeouts_to_fail: 5,
            nc_detect_prob: 0.40,
            rc_transfer_ms: 11 * MS_PER_SEC,
            rc_budget_mean: 2.5,
            rc_detect_prob: 0.03,
            abandon_failures: 6,
            retry_interval_ms: 80 * MS_PER_MIN,
            interest_mean_ms: 26 * MS_PER_HOUR,
            retry_request_prob: 0.60,
            contact_gap_ms: 2 * MS_PER_SEC,
        },
        blacklist: BlacklistConfig {
            skip_cap: 0.5,
            halfway_detections: 25_000.0,
            source_quality_bonus: 0.35,
        },
        robots: RobotConfig {
            count: 5,
            budget: 2,
            nc_timeout_ms: 12 * MS_PER_MIN,
            lockout_ms: 100 * MS_PER_MIN,
            off_prob: 0.000_5,
            off_duration_ms: 60 * MS_PER_HOUR,
        },
        crashes: None,
        server_capture: None,
        manager_check_ms: 10 * MS_PER_MIN,
        collect_ms: 12 * MS_PER_HOUR,
        keepalive_ms: 30 * MS_PER_MIN,
        name_threshold: 3,
        // Retry/keepalive traffic clusters tightly in time — exactly the
        // pattern the calendar queue wins on (results are identical either
        // way; see the sim crate's determinism test).
        queue: QueueKind::Calendar,
        // Calibrated figures stay on the coupled engine; `--sharded`
        // switches this at the runner level.
        exec: ExecMode::Coupled,
        lane: 0,
    };

    let catalog = config.build_catalog();
    let four = pick_four_files(&catalog);
    assert_eq!(four.len(), 4, "catalog must contain all four classes");

    // 24 honeypots: alternating strategies so both groups share the same
    // attractiveness profile; attractiveness spans ~[0.55, 1.55] to create
    // the single-honeypot spread of Fig. 10 (13k–37k).
    for i in 0..DISTRIBUTED_HONEYPOTS {
        let content =
            if i % 2 == 0 { ContentStrategy::NoContent } else { ContentStrategy::RandomContent };
        let attractiveness = 0.28 + ((i / 2) as f64) * (2.72 / 11.0);
        config.honeypots.push(HoneypotSetup::fixed(content, four.clone(), attractiveness));
    }

    // Normalise the arrival rate so day 0 brings ≈ 4,900 new peers/day at
    // scale 1 (decaying to ≈ 2,700/day by day 31 — Fig. 2's right axis).
    let pop4 = catalog.popularity_sum(four.iter().copied());
    config.population.rate_per_popularity = 5_000.0 / pop4;
    config.scaled(scale)
}

/// Builds the greedy scenario at volume `scale` (1.0 = paper scale).
pub fn greedy(seed: u64, scale: f64) -> ScenarioConfig {
    let catalog = CatalogConfig {
        n_files: 400_000,
        // Gentle rank skew + moderate jitter: within the harvested set the
        // per-file interest spread must match Fig. 11/12 (random-100 ≈ 2.7×
        // below popular-100, not orders of magnitude); the explicit hits
        // supply the 13 k-peer best file.
        zipf_exponent: 0.10,
        popularity_sigma: 0.48,
        class_weights: [0.32, 0.36, 0.09, 0.23],
        hit_count: 5,
        hit_multiplier: 12.0,
        // A large near-dead tail: files shared by someone but wanted by
        // almost nobody (Fig. 12's 2-peer worst file; Table I's 267 k
        // distinct files out of a 400 k universe).
        dead_fraction: 0.35,
        dead_multiplier: 0.005,
    };
    let mut config = ScenarioConfig {
        seed: seed ^ 0x6EED,
        duration: SimTime::from_days(GREEDY_DAYS),
        catalog,
        honeypots: Vec::new(),
        population: PopulationConfig {
            rate_per_popularity: 0.0, // normalised below
            daily_decay: 1.0,
            diurnal: DiurnalCurve::european(),
            local_offset_hours: 9.0,
            wanted_files_mean: 4.6,
            share_list_prob: 0.38,
            shared_list_mean: 12.0,
            arrival_tick_ms: 5 * MS_PER_MIN,
        },
        behavior: BehaviorConfig {
            hello_only_prob: 0.25,
            subset_mean: 3.0, // moot: one provider
            subset_all_prob: 1.0,
            nc_timeout_ms: 45 * MS_PER_SEC,
            nc_timeouts_to_fail: 2,
            nc_detect_prob: 0.85,
            rc_transfer_ms: 11 * MS_PER_SEC,
            rc_budget_mean: 3.0,
            rc_detect_prob: 0.30,
            abandon_failures: 2,
            retry_interval_ms: 4 * MS_PER_HOUR,
            interest_mean_ms: 10 * MS_PER_HOUR,
            retry_request_prob: 0.15,
            contact_gap_ms: 2 * MS_PER_SEC,
        },
        blacklist: BlacklistConfig {
            skip_cap: 0.0,
            halfway_detections: 1.0,
            source_quality_bonus: 0.0,
        },
        robots: RobotConfig {
            count: 2,
            budget: 2,
            nc_timeout_ms: 12 * MS_PER_MIN,
            lockout_ms: 80 * MS_PER_MIN,
            off_prob: 0.000_15,
            off_duration_ms: 84 * MS_PER_HOUR,
        },
        crashes: None,
        server_capture: None,
        manager_check_ms: 10 * MS_PER_MIN,
        collect_ms: 12 * MS_PER_HOUR,
        keepalive_ms: 30 * MS_PER_MIN,
        name_threshold: 3,
        queue: QueueKind::Calendar,
        exec: ExecMode::Coupled,
        lane: 0,
    };

    let catalog = config.build_catalog();
    // Estimate the eventual harvest's popularity mass (peers' shared lists
    // are popularity-weighted distinct samples, so draw one of the
    // expected size).
    let harvest_mass = {
        let mut rng = netsim::Rng::seed_from(seed ^ 0xCA11B);
        let sample = catalog.sample_distinct_by_popularity(&mut rng, 3_175);
        catalog.popularity_sum(sample.into_iter())
    };
    // Three moderately popular seed files, chosen so that together they
    // hold ≈1.5 % of the harvested mass: enough day-1 traffic (≈900
    // contacts at scale 1) to harvest thousands of shared-list files, yet
    // small against the harvested mass — that contrast is the day-1
    // initialisation dip of Fig. 3.
    let ranked = catalog_by_popularity(&catalog);
    let per_seed_target = 0.005 * harvest_mass;
    let mut seeds = Vec::with_capacity(3);
    for _ in 0..3 {
        let best = ranked
            .iter()
            .copied()
            .filter(|i| !seeds.contains(i))
            .min_by(|&a, &b| {
                let da = (catalog.file(a).popularity - per_seed_target).abs();
                let db = (catalog.file(b).popularity - per_seed_target).abs();
                da.partial_cmp(&db).expect("finite")
            })
            .expect("non-empty catalog");
        seeds.push(best);
    }
    config.honeypots.push(HoneypotSetup::greedy(
        seeds,
        SimTime::from_days(1),
        // Cap the adopted list at the size the paper's honeypot reached
        // (3,175): uncapped adoption would depend on unobservable details
        // of the 2008 network's day-1 dynamics.
        3_175,
    ));

    // Normalisation: the steady state (days 2–15) should bring ≈ 58,000 new
    // peers/day once the honeypot advertises its harvested list.  The
    // harvest is a popularity-weighted distinct sample of the catalog
    // (peers' shared lists are sampled that way), so we estimate its mass
    // by drawing one ourselves and normalise against that.  The run then
    // lands where it lands — shape matters, not the exact count.
    config.population.rate_per_popularity = 61_000.0 / harvest_mass;
    config.scaled(scale)
}

/// Builds the long-horizon server-capture scenario at volume `scale`:
/// the distributed world stretched to ten simulated weeks, with the
/// index server logging every query it handles (the sibling paper's
/// modality) *alongside* the usual honeypot measurement — both views of
/// the same run, so the cross-validation figures compare like with like.
pub fn server_ten_weeks(seed: u64, scale: f64) -> ScenarioConfig {
    let mut config = distributed(seed ^ 0x5E17, scale);
    config.duration = SimTime::from_days(SERVER_CAPTURE_DAYS);
    // Ten weeks at the distributed decay (0.976/day) would starve weeks
    // 7–10 (0.976⁷⁰ ≈ 0.18); a server observes its whole community, not
    // one release's fading interest, so hold the population steadier.
    config.population.daily_decay = 0.995;
    config.server_capture = Some(ServerCaptureConfig::default());
    config
}

/// Catalog indices sorted by descending popularity.
fn catalog_by_popularity(catalog: &edonkey_sim::Catalog) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..catalog.len() as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        catalog.file(b).popularity.partial_cmp(&catalog.file(a).popularity).expect("finite")
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_has_24_alternating_honeypots() {
        let c = distributed(1, 1.0);
        assert_eq!(c.honeypots.len(), 24);
        let nc = c.honeypots.iter().filter(|h| h.content == ContentStrategy::NoContent).count();
        assert_eq!(nc, 12, "two groups of 12");
        assert_eq!(c.duration, SimTime::from_days(32));
        // All advertise the same four files.
        let first = c.honeypots[0].fixed_files.clone().unwrap();
        assert_eq!(first.len(), 4);
        for h in &c.honeypots {
            assert_eq!(h.fixed_files.as_ref().unwrap(), &first);
        }
        assert!(c.population.rate_per_popularity > 0.0);
    }

    #[test]
    fn distributed_attractiveness_spread() {
        let c = distributed(1, 1.0);
        let min = c.honeypots.iter().map(|h| h.attractiveness).fold(f64::MAX, f64::min);
        let max = c.honeypots.iter().map(|h| h.attractiveness).fold(f64::MIN, f64::max);
        assert!(min >= 0.2 && max <= 3.2 && max > min * 2.0, "spread [{min}, {max}]");
        // Both strategy groups see the same attractiveness profile.
        let sum_nc: f64 = c
            .honeypots
            .iter()
            .filter(|h| h.content == ContentStrategy::NoContent)
            .map(|h| h.attractiveness)
            .sum();
        let sum_rc: f64 = c
            .honeypots
            .iter()
            .filter(|h| h.content == ContentStrategy::RandomContent)
            .map(|h| h.attractiveness)
            .sum();
        assert!((sum_nc - sum_rc).abs() < 1e-9, "groups must be attractiveness-balanced");
    }

    #[test]
    fn greedy_has_single_greedy_honeypot() {
        let c = greedy(1, 1.0);
        assert_eq!(c.honeypots.len(), 1);
        assert!(c.honeypots[0].fixed_files.is_none());
        assert_eq!(c.honeypots[0].greedy_seeds.len(), 3);
        assert_eq!(c.duration, SimTime::from_days(15));
        assert_eq!(c.honeypots[0].greedy_adopt_until, SimTime::from_days(1));
    }

    #[test]
    fn server_ten_weeks_is_a_capture_scenario() {
        let c = server_ten_weeks(1, 1.0);
        assert_eq!(c.duration, SimTime::from_days(70));
        let cap = c.server_capture.expect("capture enabled");
        assert!(cap.frame_records > 0 && cap.segment_records > 0 && cap.status_interval_ms > 0);
        assert_eq!(c.honeypots.len(), DISTRIBUTED_HONEYPOTS, "honeypots measure the same run");
        assert!(c.population.daily_decay > distributed(1, 1.0).population.daily_decay);
    }

    #[test]
    fn four_files_cover_four_classes() {
        let c = distributed(3, 1.0);
        let catalog = c.build_catalog();
        let four = c.honeypots[0].fixed_files.clone().unwrap();
        let classes: std::collections::HashSet<_> =
            four.iter().map(|&i| catalog.file(i).class).collect();
        assert_eq!(classes.len(), 4);
    }

    #[test]
    fn scenarios_deterministic_per_seed() {
        let a = distributed(9, 1.0);
        let b = distributed(9, 1.0);
        assert_eq!(a.honeypots[0].fixed_files, b.honeypots[0].fixed_files);
        assert!(
            (a.population.rate_per_popularity - b.population.rate_per_popularity).abs() < 1e-12
        );
    }

    #[test]
    fn scale_reduces_rate_only() {
        let full = greedy(1, 1.0);
        let tenth = greedy(1, 0.1);
        assert!(
            (tenth.population.rate_per_popularity - full.population.rate_per_popularity * 0.1)
                .abs()
                < 1e-9
        );
        assert_eq!(tenth.duration, full.duration);
    }
}
