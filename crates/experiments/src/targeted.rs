//! Topic-targeted measurements — the paper's primary future-work direction
//! (§V): "being able to capture all the activity regarding a particular
//! file or a set of files, and/or a specific keyword", including the open
//! question "how should distributed honeypots be coordinated?".
//!
//! The operator picks a keyword; the manager finds the matching files (the
//! way a real operator would run a SEARCH-REQUEST against a large server —
//! here the selection runs the same [`edonkey_proto::SearchExpr`] matching
//! over the synthetic catalog) and distributes them over the honeypots
//! according to a [`Coordination`] strategy.

use edonkey_proto::SearchExpr;
use edonkey_sim::{CatalogConfig, HoneypotSetup, ScenarioConfig};
use honeypot::ContentStrategy;
use netsim::SimTime;
use serde::Serialize;

use crate::scenarios;

/// How target files are spread over the honeypots.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum Coordination {
    /// Every honeypot advertises every target file (the paper's
    /// distributed measurement did this with its four files).  Maximises
    /// per-file provider count; peers spread their contacts.
    Replicated,
    /// The target files are partitioned round-robin: each file has exactly
    /// one honeypot.  Each honeypot is the unique source for its slice, so
    /// per-honeypot logs directly segment the topic.
    Partitioned,
}

impl Coordination {
    pub fn label(&self) -> &'static str {
        match self {
            Coordination::Replicated => "replicated",
            Coordination::Partitioned => "partitioned",
        }
    }
}

/// What a targeted scenario is measuring.
#[derive(Clone, Debug, Serialize)]
pub struct TargetInfo {
    pub keyword: String,
    /// Catalog indices of the target files.
    pub files: Vec<u32>,
    pub coordination: Coordination,
    pub honeypots: usize,
}

/// Builds a targeted scenario: `honeypots` honeypots covering every catalog
/// file matching `keyword` (up to `max_files`), coordinated per `strategy`,
/// for `days` days at volume `scale`.
pub fn targeted(
    seed: u64,
    scale: f64,
    keyword: &str,
    honeypots: usize,
    max_files: usize,
    days: u64,
    strategy: Coordination,
) -> (ScenarioConfig, TargetInfo) {
    assert!(honeypots > 0, "need at least one honeypot");
    // Reuse the distributed scenario's calibrated behaviour; only the
    // catalog targeting and honeypot layout change.
    let mut config = scenarios::distributed(seed, 1.0);
    config.duration = SimTime::from_days(days);
    config.catalog = CatalogConfig { n_files: 30_000, ..config.catalog };

    // "Search" the universe for the keyword, exactly as the manager would
    // query a large server.
    let catalog = config.build_catalog();
    let expr = SearchExpr::keyword(keyword);
    let mut files: Vec<u32> = (0..catalog.len() as u32)
        .filter(|&i| {
            let f = catalog.file(i);
            expr.matches(&f.name, f.size, "")
        })
        .collect();
    // Most popular matches first: the operator targets the active part of
    // the topic.
    files.sort_by(|&a, &b| {
        catalog.file(b).popularity.partial_cmp(&catalog.file(a).popularity).expect("finite")
    });
    files.truncate(max_files);
    assert!(!files.is_empty(), "keyword {keyword:?} matches no catalog file");

    config.honeypots.clear();
    for i in 0..honeypots {
        let content =
            if i % 2 == 0 { ContentStrategy::NoContent } else { ContentStrategy::RandomContent };
        let advertised: Vec<u32> = match strategy {
            Coordination::Replicated => files.clone(),
            Coordination::Partitioned => files.iter().copied().skip(i).step_by(honeypots).collect(),
        };
        config.honeypots.push(HoneypotSetup::fixed(content, advertised, 1.0));
    }

    // Normalise the arrival rate against the targeted set's popularity so
    // different keywords are comparable (same expected peers/day at scale
    // 1 per unit of target mass).
    let mass = catalog.popularity_sum(files.iter().copied());
    config.population.rate_per_popularity = 1_500.0 / mass;
    let config = config.scaled(scale);

    let info =
        TargetInfo { keyword: keyword.to_string(), files, coordination: strategy, honeypots };
    (config, info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_analysis::{peer_sets_by_file, subset_curve};
    use edonkey_sim::run_scenario;

    #[test]
    fn targeted_scenarios_build_for_both_strategies() {
        for strategy in [Coordination::Replicated, Coordination::Partitioned] {
            let (config, info) = targeted(3, 1.0, "concert", 6, 24, 7, strategy);
            assert_eq!(config.honeypots.len(), 6);
            assert!(!info.files.is_empty() && info.files.len() <= 24);
            match strategy {
                Coordination::Replicated => {
                    for h in &config.honeypots {
                        assert_eq!(
                            h.fixed_files.as_ref().unwrap().len(),
                            info.files.len(),
                            "replicated: everyone advertises everything"
                        );
                    }
                }
                Coordination::Partitioned => {
                    let total: usize = config
                        .honeypots
                        .iter()
                        .map(|h| h.fixed_files.as_ref().unwrap().len())
                        .sum();
                    assert_eq!(total, info.files.len(), "partitioned: exact cover");
                    // Disjointness.
                    let mut all: Vec<u32> = config
                        .honeypots
                        .iter()
                        .flat_map(|h| h.fixed_files.clone().unwrap())
                        .collect();
                    all.sort_unstable();
                    let before = all.len();
                    all.dedup();
                    assert_eq!(all.len(), before);
                }
            }
        }
    }

    #[test]
    fn matched_files_contain_the_keyword() {
        let (config, info) = targeted(5, 1.0, "live", 4, 50, 7, Coordination::Replicated);
        let catalog = config.build_catalog();
        for &f in &info.files {
            let name = catalog.file(f).name.to_ascii_lowercase();
            assert!(name.contains("live"), "{name}");
        }
    }

    #[test]
    fn replicated_run_observes_topic_peers() {
        let (config, info) = targeted(7, 0.3, "concert", 4, 12, 5, Coordination::Replicated);
        let out = run_scenario(config);
        assert!(out.log.validate().is_empty());
        assert!(out.log.distinct_peers > 50, "got {}", out.log.distinct_peers);
        // Every queried file is one of the targets.
        let catalog_targets: std::collections::HashSet<u32> = info.files.iter().copied().collect();
        assert!(!catalog_targets.is_empty());
        let sets = peer_sets_by_file(&out.log);
        assert!(!sets.is_empty());
        // Coverage keeps growing with more target files (the paper's
        // conclusion that bigger target sets pay off).
        let curves = subset_curve(&sets.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>(), 10, 1);
        assert!(curves.last().unwrap().avg >= curves[0].avg);
    }

    #[test]
    #[should_panic(expected = "matches no catalog file")]
    fn unknown_keyword_panics() {
        let _ = targeted(5, 1.0, "zzzznonexistent", 4, 10, 7, Coordination::Replicated);
    }
}
