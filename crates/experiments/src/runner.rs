//! End-to-end experiment execution and shared CLI plumbing for the
//! per-figure binaries.

use edonkey_sim::{run_scenario, ExecMode, ScenarioConfig, SimOutput};
use honeypot::MeasurementLog;

use crate::cache::RunCache;
use crate::scenarios;

/// Which measurement a figure draws on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Measurement {
    Distributed,
    Greedy,
}

/// Common command-line options of every experiment binary.
#[derive(Clone, Debug)]
pub struct Options {
    /// Volume scale (1.0 = paper scale).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Monte-Carlo samples for subset figures.
    pub samples: usize,
    /// Emit machine-readable JSON after the human-readable report.
    pub json: bool,
    /// Directory to store measurement logs in after running.
    pub save: Option<std::path::PathBuf>,
    /// Directory to load previously saved measurement logs from (skips the
    /// simulation when the file exists).
    pub load: Option<std::path::PathBuf>,
    /// Size of the rayon worker pool used by the parallel analyses
    /// (`None` = rayon's default, one worker per core).
    pub threads: Option<usize>,
    /// Disable the content-addressed run cache (`--no-cache`).
    pub no_cache: bool,
    /// Run-cache directory (`--cache-dir`; default
    /// `target/run-cache` at the workspace root).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Execute scenarios lane-sharded on the rayon pool (`--sharded`).
    pub sharded: bool,
    /// Run the live control-plane loopback demo (manager daemon + agents
    /// over real TCP) instead of / before the simulated measurements.
    pub live_loopback: bool,
    /// Durable-spool root for the live demo (`--spool-dir`): agents
    /// write-ahead their chunks under it and the manager checkpoints its
    /// supervision state + chunk WAL, making the demo crash-safe (a
    /// manager kill/recovery cycle is exercised when set).
    pub spool_dir: Option<std::path::PathBuf>,
    /// Manager snapshot cadence in milliseconds
    /// (`--checkpoint-interval`; requires `--spool-dir`).
    pub checkpoint_interval: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 1.0,
            seed: scenarios::DEFAULT_SEED,
            samples: 100,
            json: false,
            save: None,
            load: None,
            threads: None,
            no_cache: false,
            cache_dir: None,
            sharded: false,
            live_loopback: false,
            spool_dir: None,
            checkpoint_interval: None,
        }
    }
}

impl Options {
    /// Parses `--scale F`, `--seed N`, `--samples N`, `--json` from
    /// `std::env::args`.  Exits with a usage message on malformed input.
    pub fn from_args() -> Self {
        let mut opts = Options::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let take_value = |i: &mut usize| -> String {
                *i += 1;
                args.get(*i).cloned().unwrap_or_else(|| usage(&args[*i - 1]))
            };
            match args[i].as_str() {
                "--scale" => {
                    opts.scale = take_value(&mut i).parse().unwrap_or_else(|_| usage("--scale"));
                    if !(opts.scale > 0.0 && opts.scale.is_finite()) {
                        usage("--scale must be a positive number");
                    }
                }
                "--seed" => {
                    opts.seed = take_value(&mut i).parse().unwrap_or_else(|_| usage("--seed"))
                }
                "--samples" => {
                    opts.samples = take_value(&mut i).parse().unwrap_or_else(|_| usage("--samples"))
                }
                "--json" => opts.json = true,
                "--save" => opts.save = Some(take_value(&mut i).into()),
                "--load" => opts.load = Some(take_value(&mut i).into()),
                "--threads" => {
                    let n: usize =
                        take_value(&mut i).parse().unwrap_or_else(|_| usage("--threads"));
                    if n == 0 {
                        usage("--threads must be at least 1");
                    }
                    opts.threads = Some(n);
                }
                "--no-cache" => opts.no_cache = true,
                "--cache-dir" => opts.cache_dir = Some(take_value(&mut i).into()),
                "--sharded" => opts.sharded = true,
                "--live-loopback" => opts.live_loopback = true,
                "--spool-dir" => opts.spool_dir = Some(take_value(&mut i).into()),
                "--checkpoint-interval" => {
                    let ms: u64 = take_value(&mut i)
                        .parse()
                        .unwrap_or_else(|_| usage("--checkpoint-interval"));
                    if ms == 0 {
                        usage("--checkpoint-interval must be at least 1 ms");
                    }
                    opts.checkpoint_interval = Some(ms);
                }
                "--help" | "-h" => usage(""),
                other => usage(other),
            }
            i += 1;
        }
        if opts.checkpoint_interval.is_some() && opts.spool_dir.is_none() {
            usage("--checkpoint-interval requires --spool-dir");
        }
        opts.install_thread_pool();
        opts
    }

    /// The live demo's durability configuration under these options
    /// (`None` unless `--spool-dir` was given).
    pub fn live_durability(&self) -> Option<crate::live::LiveDurability> {
        self.spool_dir.as_ref().map(|dir| crate::live::LiveDurability {
            dir: dir.clone(),
            checkpoint_interval_ms: self.checkpoint_interval,
        })
    }

    /// Sizes rayon's global pool to `--threads` (first caller wins; a
    /// no-op when unset or when a pool already exists).
    pub fn install_thread_pool(&self) {
        if let Some(n) = self.threads {
            if let Err(e) = rayon::ThreadPoolBuilder::new().num_threads(n).build_global() {
                eprintln!("[run] rayon pool already initialised ({e}); --threads ignored");
            }
        }
    }

    /// The scenario configuration for a measurement under these options.
    pub fn scenario(&self, which: Measurement) -> ScenarioConfig {
        let mut config = match which {
            Measurement::Distributed => scenarios::distributed(self.seed, self.scale),
            Measurement::Greedy => scenarios::greedy(self.seed, self.scale),
        };
        if self.sharded {
            config.exec = ExecMode::Sharded;
        }
        config
    }

    /// The run cache under these options.
    pub fn run_cache(&self) -> RunCache {
        match &self.cache_dir {
            Some(dir) => RunCache::new(dir.clone()),
            None => RunCache::at_default_location(),
        }
    }

    /// Runs the measurement and returns its merged log (with stats printed
    /// to stderr so stdout stays report-only).  With `--load`, a previously
    /// saved log is reused instead of re-running the simulation; with
    /// `--save`, the fresh log is stored for later reuse.
    pub fn run(&self, which: Measurement) -> MeasurementLog {
        let label = match which {
            Measurement::Distributed => "distributed",
            Measurement::Greedy => "greedy",
        };
        if let Some(dir) = &self.load {
            let path = dir.join(format!("{label}.edhp"));
            if path.exists() {
                match honeypot::storage::load(&path) {
                    // A log that decodes but fails validation (truncated
                    // write, foreign file) would silently corrupt every
                    // figure — fall back to re-running instead.
                    Ok(log) => {
                        let problems = log.validate();
                        if problems.is_empty() {
                            eprintln!(
                                "[run] {label}: loaded {} records from {}",
                                log.records.len(),
                                path.display()
                            );
                            return log;
                        }
                        eprintln!(
                            "[run] {label}: {} fails validation ({} problems, first: {}); re-running",
                            path.display(),
                            problems.len(),
                            problems.first().map(String::as_str).unwrap_or("?"),
                        );
                    }
                    Err(e) => eprintln!(
                        "[run] {label}: could not load {}: {e}; re-running",
                        path.display()
                    ),
                }
            }
        }
        // Content-addressed cache: keyed by the full scenario config +
        // storage format version, so a hit is guaranteed to be the log
        // this exact simulation would produce.  Corrupt entries report
        // and fall through to a fresh run, like a corrupt `--load` file.
        let config = self.scenario(which);
        let cache = self.run_cache();
        if !self.no_cache {
            if let Some(log) = cache.load(&config) {
                eprintln!(
                    "[run] {label}: cache hit, {} records from {}",
                    log.records.len(),
                    cache.entry_path(&config).display()
                );
                return log;
            }
        }
        let out = self.run_full(which);
        if let Some(dir) = &self.save {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("[run] cannot create {}: {e}", dir.display());
            } else {
                let path = dir.join(format!("{label}.edhp"));
                match honeypot::storage::save(&out.log, &path) {
                    Ok(()) => eprintln!("[run] {label}: saved to {}", path.display()),
                    Err(e) => eprintln!("[run] {label}: save failed: {e}"),
                }
            }
        }
        if !self.no_cache {
            match cache.store(&config, &out.log) {
                Ok(path) => eprintln!("[run] {label}: cached to {}", path.display()),
                Err(e) => eprintln!("[run] {label}: cache store failed: {e}"),
            }
        }
        out.log
    }

    /// Runs the measurement, returning the full output.
    pub fn run_full(&self, which: Measurement) -> SimOutput {
        let label = match which {
            Measurement::Distributed => "distributed",
            Measurement::Greedy => "greedy",
        };
        eprintln!("[run] {label} measurement: scale {}, seed {:#x} …", self.scale, self.seed);
        let started = std::time::Instant::now();
        let out = run_scenario(self.scenario(which));
        eprintln!(
            "[run] {label}: {} peers, {} records in {:.1}s ({} arrivals, {} sessions, {} nc-det, {} rc-det, {} skipped)",
            out.log.distinct_peers,
            out.log.records.len(),
            started.elapsed().as_secs_f64(),
            out.stats.arrivals,
            out.stats.sessions,
            out.stats.detections_nc,
            out.stats.detections_rc,
            out.stats.skipped_invisible,
        );
        let problems = out.log.validate();
        assert!(problems.is_empty(), "invalid measurement log: {problems:?}");
        out
    }
}

fn usage(offender: &str) -> ! {
    if !offender.is_empty() {
        eprintln!("invalid arguments: {offender}");
    }
    eprintln!(
        "usage: <experiment> [--scale F] [--seed N] [--samples N] [--json]\n\
         \n\
         --scale F    population scale, 1.0 = paper scale (default 1.0)\n\
         --seed N     master seed (default {:#x})\n\
         --samples N  Monte-Carlo samples for subset figures (default 100)\n\
         --json       also emit machine-readable JSON\n\
         --save DIR   store the measurement logs under DIR (EDHP format)\n\
         --load DIR   reuse measurement logs from DIR instead of re-running\n\
         --threads N  size of the rayon worker pool (default: one per core)\n\
         --no-cache   bypass the content-addressed run cache\n\
         --cache-dir DIR  run-cache location (default target/run-cache)\n\
         --sharded    lane-sharded execution on the rayon pool\n\
         --live-loopback  live control-plane demo over loopback TCP (all)\n\
         --spool-dir DIR  durable spools + manager checkpoint for the live\n\
         \x20             demo; also exercises a manager crash/recovery\n\
         --checkpoint-interval MS  manager snapshot cadence (needs --spool-dir)",
        scenarios::DEFAULT_SEED
    );
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_analysis::basic_stats;

    #[test]
    fn small_distributed_run_is_coherent() {
        let opts = Options {
            scale: 0.01,
            seed: 5,
            samples: 10,
            json: false,
            no_cache: true,
            ..Default::default()
        };
        let log = opts.run(Measurement::Distributed);
        assert_eq!(log.honeypots.len(), 24);
        let stats = basic_stats(&log);
        assert!(stats.distinct_peers > 50, "got {}", stats.distinct_peers);
        assert_eq!(stats.shared_files, 4);
        assert!((stats.duration_days - 32.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_saved_log_is_rerun_not_trusted() {
        use edonkey_analysis::testutil::synthetic_log;
        use honeypot::QueryKind;
        use netsim::SimTime;

        let dir = std::env::temp_dir().join(format!("edhp-load-check-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        // A log that decodes fine but violates the peer-range invariant.
        let mut bad = synthetic_log(&[(0, QueryKind::Hello, 0, SimTime::from_hours(1))]);
        bad.distinct_peers = 0;
        assert!(!bad.validate().is_empty(), "fixture must actually be invalid");
        honeypot::storage::save(&bad, &dir.join("distributed.edhp")).expect("save");

        let opts = Options {
            scale: 0.01,
            seed: 5,
            load: Some(dir.clone()),
            no_cache: true,
            ..Default::default()
        };
        let log = opts.run(Measurement::Distributed);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(log.honeypots.len(), 24, "must come from a fresh run, not the bad file");
        assert!(log.validate().is_empty());
    }

    #[test]
    fn small_greedy_run_adopts_files() {
        let opts = Options {
            scale: 0.01,
            seed: 5,
            samples: 10,
            json: false,
            no_cache: true,
            ..Default::default()
        };
        let log = opts.run(Measurement::Greedy);
        assert_eq!(log.honeypots.len(), 1);
        let stats = basic_stats(&log);
        assert!(
            stats.shared_files > 3,
            "greedy honeypot must adopt beyond its seeds, got {}",
            stats.shared_files
        );
        assert!(stats.distinct_files as u32 >= stats.shared_files);
    }
}
