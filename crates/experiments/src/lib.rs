//! # edonkey-experiments
//!
//! Calibrated scenarios and reporting code that regenerate every table and
//! figure of the paper's evaluation.  Each binary (`table1`, `fig02` …
//! `fig12`, `all`) runs the relevant measurement on the simulated eDonkey
//! world and prints the paper artefact; `all` additionally rewrites
//! `EXPERIMENTS.md`.
//!
//! Binaries accept `--scale F` (population scale; 1.0 = paper scale),
//! `--seed N`, `--samples N` (Monte-Carlo subsets), `--json`, plus the
//! run-cache (`--no-cache`, `--cache-dir DIR`) and execution
//! (`--sharded`, `--threads N`) knobs — completed runs are reused from
//! the content-addressed cache ([`cache`]) across invocations and across
//! binaries.

pub mod cache;
pub mod figures;
pub mod live;
pub mod runner;
pub mod scenarios;
pub mod targeted;

pub use cache::{cache_key, RunCache};
pub use figures::Artefact;
pub use live::{run_live_loopback, LiveDemo, LiveDurability};
pub use runner::{Measurement, Options};
pub use targeted::{targeted, Coordination, TargetInfo};
