//! One function per paper artefact: computes the figure's data from the
//! shared [`LogIndex`] (built once per measurement) and renders the
//! human-readable report (plus a JSON value for EXPERIMENTS.md).
//!
//! Only [`table1`] (O(1) header fields) and the top-peer series (a single
//! peer's records) still read the raw log.

use edonkey_analysis::report::{
    ascii_chart, ascii_table, format_bytes, format_count, series_table,
};
use edonkey_analysis::{
    basic_stats, file_peer_counts, peer_series, plateaus, popular_files, random_files,
    subset_curve, LogIndex, StrategyComparison, SubsetPoint,
};
use honeypot::{MeasurementLog, QueryKind};
use serde_json::json;

/// A rendered experiment artefact.
pub struct Artefact {
    /// Human-readable report.
    pub text: String,
    /// Machine-readable data (written into EXPERIMENTS.md's JSON block).
    pub data: serde_json::Value,
}

/// Table I: basic statistics of both measurements.
pub fn table1(dist: &MeasurementLog, greedy: &MeasurementLog) -> Artefact {
    let d = basic_stats(dist);
    let g = basic_stats(greedy);
    let rows = vec![
        vec!["Number of honeypots".into(), d.honeypots.to_string(), g.honeypots.to_string()],
        vec![
            "Duration in days".into(),
            format!("{:.0}", d.duration_days),
            format!("{:.0}", g.duration_days),
        ],
        vec![
            "Number of shared files".into(),
            format_count(u64::from(d.shared_files)),
            format_count(u64::from(g.shared_files)),
        ],
        vec![
            "Number of distinct peers".into(),
            format_count(u64::from(d.distinct_peers)),
            format_count(u64::from(g.distinct_peers)),
        ],
        vec![
            "Number of distinct files".into(),
            format_count(d.distinct_files as u64),
            format_count(g.distinct_files as u64),
        ],
        vec![
            "Space used by distinct files".into(),
            format_bytes(d.distinct_files_bytes),
            format_bytes(g.distinct_files_bytes),
        ],
    ];
    let text = format!(
        "Table I — basic statistics of the collected data\n{}",
        ascii_table(&["statistic", "distributed", "greedy"], &rows)
    );
    let data = json!({
        "distributed": {
            "honeypots": d.honeypots, "days": d.duration_days,
            "shared_files": d.shared_files, "distinct_peers": d.distinct_peers,
            "distinct_files": d.distinct_files, "space_tb": d.distinct_files_tb(),
        },
        "greedy": {
            "honeypots": g.honeypots, "days": g.duration_days,
            "shared_files": g.shared_files, "distinct_peers": g.distinct_peers,
            "distinct_files": g.distinct_files, "space_tb": g.distinct_files_tb(),
        },
    });
    Artefact { text, data }
}

/// Figs. 2 (distributed) and 3 (greedy): distinct-peer growth.
pub fn fig_growth(ix: &LogIndex, fig_no: u8) -> Artefact {
    let g = ix.peer_growth();
    let files = ix.file_growth();
    let days: Vec<u64> = (0..g.cumulative.len() as u64).collect();
    let chart = ascii_chart(
        &[("total peers", &g.cumulative.iter().map(|&v| v as f64).collect::<Vec<_>>()[..])],
        64,
        12,
    );
    let text = format!(
        "Fig. {fig_no} — distinct peers over time ({} total; {:.0} new/day over the last 5 days)\n{}\n{}",
        format_count(g.total()),
        g.tail_rate(5),
        series_table("day", &days, &[("total_peers", &g.cumulative), ("new_peers", &g.new_per_day)]),
        chart,
    );
    let data = json!({
        "total_peers": g.total(),
        "tail_new_per_day": g.tail_rate(5),
        "cumulative": g.cumulative,
        "new_per_day": g.new_per_day,
        "distinct_files_total": files.total(),
    });
    Artefact { text, data }
}

/// Fig. 4: HELLO messages per hour over the first week.
pub fn fig04(ix: &LogIndex) -> Artefact {
    let s = ix.hourly_counts(QueryKind::Hello);
    let week: Vec<u64> = s.counts.iter().copied().take(168).collect();
    let first_ms = ix.first_event_ms(QueryKind::Hello).unwrap_or(0);
    let ratio = edonkey_analysis::HourlySeries { counts: week.clone() }.day_night_ratio();
    let chart = ascii_chart(
        &[("HELLO/hour", &week.iter().map(|&v| v as f64).collect::<Vec<_>>()[..])],
        84,
        14,
    );
    let hours: Vec<u64> = (0..week.len() as u64).collect();
    let text = format!(
        "Fig. 4 — HELLO messages per hour, first week (first query after {:.1} min; day/night ratio {:.1}×)\n{}\n{}",
        first_ms as f64 / 60_000.0,
        ratio,
        chart,
        series_table("hour", &hours, &[("hello", &week)]),
    );
    let data = json!({
        "first_query_min": first_ms as f64 / 60_000.0,
        "day_night_ratio": ratio,
        "hourly_first_week": week,
    });
    Artefact { text, data }
}

fn strategy_artefact(title: String, c: &StrategyComparison, extra: serde_json::Value) -> Artefact {
    let days: Vec<u64> = (0..c.random_content.len() as u64).collect();
    let (rc, nc) = c.finals();
    let chart = ascii_chart(
        &[
            ("random content", &c.random_content.iter().map(|&v| v as f64).collect::<Vec<_>>()[..]),
            ("no content", &c.no_content.iter().map(|&v| v as f64).collect::<Vec<_>>()[..]),
        ],
        64,
        12,
    );
    let text = format!(
        "{title}\n  random content: {}   no content: {}   (random/no = {:.2})\n{}\n{}",
        format_count(rc),
        format_count(nc),
        rc as f64 / nc.max(1) as f64,
        series_table(
            "day",
            &days,
            &[("random_content", &c.random_content), ("no_content", &c.no_content)]
        ),
        chart,
    );
    let mut data = json!({
        "random_content": c.random_content,
        "no_content": c.no_content,
        "final_random": rc,
        "final_no": nc,
    });
    if let (Some(obj), Some(ex)) = (data.as_object_mut(), extra.as_object()) {
        for (k, v) in ex {
            obj.insert(k.clone(), v.clone());
        }
    }
    Artefact { text, data }
}

/// Fig. 5: distinct peers sending HELLO per strategy group.
pub fn fig05(ix: &LogIndex) -> Artefact {
    let c = ix.distinct_peers_by_strategy(QueryKind::Hello);
    strategy_artefact(
        "Fig. 5 — distinct peers sending HELLO, by content strategy".into(),
        &c,
        json!({}),
    )
}

/// Fig. 6: distinct peers sending START-UPLOAD per strategy group.
pub fn fig06(ix: &LogIndex) -> Artefact {
    let c = ix.distinct_peers_by_strategy(QueryKind::StartUpload);
    strategy_artefact(
        "Fig. 6 — distinct peers sending START-UPLOAD, by content strategy".into(),
        &c,
        json!({}),
    )
}

/// Fig. 7: cumulative REQUEST-PART messages per strategy group.
pub fn fig07(ix: &LogIndex) -> Artefact {
    let c = ix.messages_by_strategy(QueryKind::RequestPart);
    strategy_artefact(
        "Fig. 7 — REQUEST-PART messages received, by content strategy".into(),
        &c,
        json!({}),
    )
}

/// Figs. 8 and 9: the top peer's START-UPLOAD / REQUEST-PART series.
/// The top-peer search reads the index; the single-peer series scans the
/// log (one peer's records only).
pub fn fig_top_peer(log: &MeasurementLog, ix: &LogIndex, fig_no: u8) -> Artefact {
    let kind = if fig_no == 8 { QueryKind::StartUpload } else { QueryKind::RequestPart };
    let Some(peer) = ix.top_peer(QueryKind::StartUpload) else {
        return Artefact {
            text: format!("Fig. {fig_no} — no queries recorded"),
            data: json!(null),
        };
    };
    let c = peer_series(log, peer, kind);
    let flat_rc = plateaus(&c.random_content, 2);
    let flat_nc = plateaus(&c.no_content, 2);
    let mut artefact = strategy_artefact(
        format!(
            "Fig. {fig_no} — {} messages from the top peer (anon id {}), by content strategy",
            kind.name(),
            peer.0
        ),
        &c,
        json!({ "peer": peer.0, "plateaus_rc": flat_rc, "plateaus_nc": flat_nc }),
    );
    artefact.text.push_str(&format!(
        "plateaus (≥2 quiet days): random content {flat_rc:?}, no content {flat_nc:?}\n"
    ));
    artefact
}

fn subset_artefact(title: String, curve: &[SubsetPoint], per_file: serde_json::Value) -> Artefact {
    let ns: Vec<u64> = curve.iter().map(|p| p.n as u64).collect();
    let avg: Vec<u64> = curve.iter().map(|p| p.avg.round() as u64).collect();
    let min: Vec<u64> = curve.iter().map(|p| p.min).collect();
    let max: Vec<u64> = curve.iter().map(|p| p.max).collect();
    let chart = ascii_chart(
        &[
            ("avg", &avg.iter().map(|&v| v as f64).collect::<Vec<_>>()[..]),
            ("min", &min.iter().map(|&v| v as f64).collect::<Vec<_>>()[..]),
            ("max", &max.iter().map(|&v| v as f64).collect::<Vec<_>>()[..]),
        ],
        64,
        12,
    );
    let text = format!(
        "{title}\n{}\n{}",
        series_table("n", &ns, &[("avg", &avg), ("min", &min), ("max", &max)]),
        chart,
    );
    let mut data = json!({
        "n": ns, "avg": curve.iter().map(|p| p.avg).collect::<Vec<_>>(),
        "min": min, "max": max,
    });
    if let (Some(obj), Some(ex)) = (data.as_object_mut(), per_file.as_object()) {
        for (k, v) in ex {
            obj.insert(k.clone(), v.clone());
        }
    }
    Artefact { text, data }
}

/// Fig. 10: distinct peers vs number of honeypots (100 random subsets per
/// n; min/avg/max).
pub fn fig10(ix: &LogIndex, samples: usize, seed: u64) -> Artefact {
    let curve = subset_curve(ix.honeypot_peer_sets(), samples, seed);
    let single_min = curve.first().map_or(0, |p| p.min);
    let single_max = curve.first().map_or(0, |p| p.max);
    subset_artefact(
        format!(
            "Fig. 10 — distinct peers vs number of honeypots ({samples} samples/n; singles {}–{})",
            format_count(single_min),
            format_count(single_max)
        ),
        &curve,
        json!({ "single_min": single_min, "single_max": single_max }),
    )
}

/// Figs. 11 (random files) and 12 (popular files): distinct peers vs
/// number of advertised files.
pub fn fig_files(ix: &LogIndex, fig_no: u8, samples: usize, seed: u64) -> Artefact {
    let sets = ix.file_peer_sets();
    let counts = file_peer_counts(sets);
    let (label, chosen) = if fig_no == 11 {
        ("random-files", random_files(sets, 100, seed ^ 0xF11E5))
    } else {
        ("popular-files", popular_files(sets, 100))
    };
    let curve = subset_curve(&chosen, samples, seed);
    let final_avg = curve.last().map_or(0.0, |p| p.avg);
    let per_file = final_avg / curve.len().max(1) as f64;
    subset_artefact(
        format!(
            "Fig. {fig_no} — distinct peers vs number of advertised files ({label}; ≈{:.0} peers/file; best file {}, worst {})",
            per_file,
            format_count(counts.first().copied().unwrap_or(0)),
            format_count(counts.last().copied().unwrap_or(0)),
        ),
        &curve,
        json!({
            "set": label,
            "peers_per_file": per_file,
            "best_file_peers": counts.first().copied().unwrap_or(0),
            "worst_file_peers": counts.last().copied().unwrap_or(0),
            "queried_files": counts.len(),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_analysis::testutil::synthetic_log;
    use netsim::SimTime;

    fn fixture() -> (MeasurementLog, LogIndex) {
        let log = synthetic_log(&[
            (0, QueryKind::Hello, 0, SimTime::from_hours(1)),
            (0, QueryKind::StartUpload, 0, SimTime::from_hours(1)),
            (1, QueryKind::Hello, 1, SimTime::from_hours(2)),
            (1, QueryKind::StartUpload, 1, SimTime::from_hours(2)),
            (1, QueryKind::RequestPart, 1, SimTime::from_hours(3)),
            (2, QueryKind::Hello, 1, SimTime::from_hours(30)),
        ]);
        let ix = LogIndex::build(&log);
        (log, ix)
    }

    #[test]
    fn table1_renders_both_columns() {
        let (log, _) = fixture();
        let a = table1(&log, &log);
        assert!(a.text.contains("distributed") && a.text.contains("greedy"));
        assert!(a.data["distributed"]["distinct_peers"].as_u64().unwrap() == 3);
    }

    #[test]
    fn growth_figures_render() {
        let (_, ix) = fixture();
        let a = fig_growth(&ix, 2);
        assert!(a.text.contains("Fig. 2"));
        assert_eq!(a.data["total_peers"].as_u64(), Some(3));
    }

    #[test]
    fn fig04_reports_first_query() {
        let (_, ix) = fixture();
        let a = fig04(&ix);
        assert!(a.text.contains("Fig. 4"));
        assert!((a.data["first_query_min"].as_f64().unwrap() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn strategy_figures_render() {
        let (_, ix) = fixture();
        for f in [fig05(&ix), fig06(&ix), fig07(&ix)] {
            assert!(f.text.contains("random content"));
            assert!(f.data["final_random"].is_u64());
        }
    }

    #[test]
    fn top_peer_figures_render() {
        let (log, ix) = fixture();
        let a = fig_top_peer(&log, &ix, 8);
        assert!(a.text.contains("top peer"));
        let b = fig_top_peer(&log, &ix, 9);
        assert!(b.text.contains("REQUEST-PART"));
    }

    #[test]
    fn top_peer_empty_log() {
        let log = synthetic_log(&[]);
        let ix = LogIndex::build(&log);
        let a = fig_top_peer(&log, &ix, 8);
        assert!(a.text.contains("no queries"));
    }

    #[test]
    fn subset_figures_render() {
        let (_, ix) = fixture();
        let a = fig10(&ix, 10, 1);
        assert!(a.text.contains("Fig. 10"));
        let b = fig_files(&ix, 11, 10, 1);
        assert!(b.data["set"].as_str() == Some("random-files"));
        let c = fig_files(&ix, 12, 10, 1);
        assert!(c.data["set"].as_str() == Some("popular-files"));
    }
}
