//! Runs both measurements once (concurrently — they are independent
//! seeded simulations), builds one [`LogIndex`] per log, regenerates every
//! table and figure from the shared indexes, and rewrites `EXPERIMENTS.md`
//! with paper-vs-measured values.  Per-phase wall-clock timings go to
//! stderr so `--scale` sweeps can attribute time to simulate / index /
//! figures.

use std::fmt::Write as _;
use std::time::Instant;

use edonkey_analysis::LogIndex;
use edonkey_experiments::figures;
use edonkey_experiments::{Measurement, Options};
use honeypot::MeasurementLog;
use serde_json::json;

/// Paper-reported values each artefact is compared against.
fn paper_reference() -> serde_json::Value {
    json!({
        "table1": {
            "distributed": { "honeypots": 24, "days": 32, "shared_files": 4,
                              "distinct_peers": 110_049, "distinct_files": 28_007, "space_tb": 9 },
            "greedy": { "honeypots": 1, "days": 15, "shared_files": 3_175,
                         "distinct_peers": 871_445, "distinct_files": 267_047, "space_tb": 90 },
        },
        "fig02": { "total_peers": 110_049, "tail_new_per_day": 2_500 },
        "fig03": { "total_peers": 871_445, "tail_new_per_day": 54_000 },
        "fig04": { "first_query_min": 10, "day_night": "clear oscillation, peaks daytime" },
        "fig05": { "ordering": "random content > no content (distinct HELLO peers)" },
        "fig06": { "ordering": "random content > no content (distinct START-UPLOAD peers)" },
        "fig07": { "final_random": 1_900_000, "final_no": 1_500_000 },
        "fig08": { "ordering": "top peer sends more START-UPLOAD to random content (~5.5k vs ~4k)" },
        "fig09": { "ordering": "top peer sends more REQUEST-PART to random content (~11k vs ~8k)" },
        "fig10": { "single_min": 13_000, "single_max": 37_000, "union_24": 110_049 },
        "fig11": { "peers_per_file": 1_000, "union_100": 100_000 },
        "fig12": { "peers_per_file": 2_700, "union_100": 270_000, "best_file_peers": 13_373, "worst_file_peers": 2 },
    })
}

fn main() {
    let opts = Options::from_args();
    let t_total = Instant::now();

    if opts.live_loopback {
        // Demo path: deploy the real control plane (manager daemon + 3
        // supervised agents + eDonkey server, all loopback TCP) with one
        // injected crash, and prove the transport lossless by replay.
        // With --spool-dir the run is durable and a manager crash plus
        // recovery is exercised on top.
        let t_phase = Instant::now();
        let durability = opts.live_durability();
        let demo = edonkey_experiments::run_live_loopback(3, opts.seed, true, durability.as_ref())
            .expect("live loopback deployment");
        eprintln!(
            "[all] live loopback: {} records, {} relaunches, {} manager restores, {} resumes in {:.2}s",
            demo.log.records.len(),
            demo.metrics.total_relaunches(),
            demo.metrics.manager_restores,
            demo.metrics.total_resumes(),
            t_phase.elapsed().as_secs_f64()
        );
        assert_eq!(demo.divergence, None, "journal replay must reproduce the live log");
        println!("{}", demo.metrics.to_json());
        return;
    }

    // The two measurements share nothing (separate seeded worlds), so they
    // run on their own OS threads; each log's index is then built once and
    // serves every figure below.
    let t_phase = Instant::now();
    let (dist, greedy) = crossbeam::scope(|s| {
        let d = s.spawn(|_| opts.run(Measurement::Distributed));
        let g = s.spawn(|_| opts.run(Measurement::Greedy));
        (d.join().expect("distributed run"), g.join().expect("greedy run"))
    })
    .expect("scoped simulation threads");
    eprintln!(
        "[all] phase simulate: {:.2}s (both measurements, concurrent)",
        t_phase.elapsed().as_secs_f64()
    );

    let t_phase = Instant::now();
    let dist_ix = LogIndex::build(&dist);
    let greedy_ix = LogIndex::build(&greedy);
    assert_eq!(dist_ix.recount_distinct_peers(), u64::from(dist.distinct_peers));
    assert_eq!(greedy_ix.recount_distinct_peers(), u64::from(greedy.distinct_peers));
    eprintln!(
        "[all] phase index: {:.2}s ({} records)",
        t_phase.elapsed().as_secs_f64(),
        dist.records.len() + greedy.records.len()
    );

    let t_phase = Instant::now();
    let artefacts: Vec<(&str, figures::Artefact)> = vec![
        ("table1", figures::table1(&dist, &greedy)),
        ("fig02", figures::fig_growth(&dist_ix, 2)),
        ("fig03", figures::fig_growth(&greedy_ix, 3)),
        ("fig04", figures::fig04(&dist_ix)),
        ("fig05", figures::fig05(&dist_ix)),
        ("fig06", figures::fig06(&dist_ix)),
        ("fig07", figures::fig07(&dist_ix)),
        ("fig08", figures::fig_top_peer(&dist, &dist_ix, 8)),
        ("fig09", figures::fig_top_peer(&dist, &dist_ix, 9)),
        ("fig10", figures::fig10(&dist_ix, opts.samples, opts.seed)),
        ("fig11", figures::fig_files(&greedy_ix, 11, opts.samples, opts.seed)),
        ("fig12", figures::fig_files(&greedy_ix, 12, opts.samples, opts.seed)),
    ];
    eprintln!("[all] phase figures: {:.2}s", t_phase.elapsed().as_secs_f64());

    for (_, a) in &artefacts {
        println!("{}\n", a.text);
    }

    let md = render_experiments_md(&opts, &dist, &greedy, &artefacts);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("EXPERIMENTS.md");
    match std::fs::write(&path, md) {
        Ok(()) => eprintln!("[all] wrote {}", path.display()),
        Err(e) => eprintln!("[all] could not write {}: {e}", path.display()),
    }

    if opts.json {
        let combined: serde_json::Value = artefacts
            .iter()
            .map(|(id, a)| ((*id).to_string(), a.data.clone()))
            .collect::<serde_json::Map<_, _>>()
            .into();
        println!("{}", serde_json::to_string_pretty(&combined).expect("serialisable"));
    }
    eprintln!("[all] total: {:.2}s", t_total.elapsed().as_secs_f64());
}

fn summary_line(id: &str, data: &serde_json::Value) -> String {
    match id {
        "table1" => {
            format!(
            "distributed: {} peers / {} files / {:.1} TB — greedy: {} peers / {} files / {:.1} TB",
            data["distributed"]["distinct_peers"], data["distributed"]["distinct_files"],
            data["distributed"]["space_tb"].as_f64().unwrap_or(0.0),
            data["greedy"]["distinct_peers"], data["greedy"]["distinct_files"],
            data["greedy"]["space_tb"].as_f64().unwrap_or(0.0),
        )
        }
        "fig02" | "fig03" => format!(
            "{} total peers, {:.0} new/day at the end",
            data["total_peers"],
            data["tail_new_per_day"].as_f64().unwrap_or(0.0)
        ),
        "fig04" => format!(
            "first query after {:.1} min, day/night ratio {:.1}×",
            data["first_query_min"].as_f64().unwrap_or(0.0),
            data["day_night_ratio"].as_f64().unwrap_or(0.0)
        ),
        "fig05" | "fig06" | "fig07" | "fig08" | "fig09" => {
            format!("random content {} vs no content {}", data["final_random"], data["final_no"])
        }
        "fig10" => format!(
            "singles {}–{}, union(24) {}",
            data["single_min"],
            data["single_max"],
            data["avg"].as_array().and_then(|a| a.last()).cloned().unwrap_or(json!(0))
        ),
        "fig11" | "fig12" => format!(
            "≈{:.0} peers/file, union(100) {}, best file {}, worst {}",
            data["peers_per_file"].as_f64().unwrap_or(0.0),
            data["avg"].as_array().and_then(|a| a.last()).cloned().unwrap_or(json!(0)),
            data["best_file_peers"],
            data["worst_file_peers"]
        ),
        _ => String::new(),
    }
}

fn render_experiments_md(
    opts: &Options,
    dist: &MeasurementLog,
    greedy: &MeasurementLog,
    artefacts: &[(&str, figures::Artefact)],
) -> String {
    let reference = paper_reference();
    let mut md = String::new();
    let _ = writeln!(
        md,
        "# EXPERIMENTS — paper vs. measured\n\n\
         Reproduction of every table and figure of *Measurement of eDonkey Activity\n\
         with Distributed Honeypots* (Allali, Latapy & Magnien, 2009) on the simulated\n\
         eDonkey world (see DESIGN.md for the substitution argument).\n\n\
         Run: `cargo run --release -p edonkey-experiments --bin all -- --scale {} --seed {:#x} --samples {}`\n\n\
         Absolute magnitudes depend on the synthetic population's calibration; the\n\
         claims under test are the *shapes*: who wins, by what rough factor, and\n\
         where the curves bend.\n",
        opts.scale, opts.seed, opts.samples
    );
    let _ = writeln!(
        md,
        "Distributed run: {} records, {} distinct peers. Greedy run: {} records, {} distinct peers.\n",
        dist.records.len(),
        dist.distinct_peers,
        greedy.records.len(),
        greedy.distinct_peers
    );
    if opts.load.is_some() {
        let _ = writeln!(
            md,
            "Measurement logs were loaded with `--load`; the scale/seed above\n\
             describe this invocation, not necessarily the loaded logs.\n"
        );
    }
    let titles: &[(&str, &str)] = &[
        ("table1", "Table I — basic statistics"),
        ("fig02", "Fig. 2 — peer growth, distributed"),
        ("fig03", "Fig. 3 — peer growth, greedy"),
        ("fig04", "Fig. 4 — HELLO per hour, day/night"),
        ("fig05", "Fig. 5 — distinct HELLO peers per strategy"),
        ("fig06", "Fig. 6 — distinct START-UPLOAD peers per strategy"),
        ("fig07", "Fig. 7 — REQUEST-PART messages per strategy"),
        ("fig08", "Fig. 8 — top peer START-UPLOAD"),
        ("fig09", "Fig. 9 — top peer REQUEST-PART"),
        ("fig10", "Fig. 10 — peers vs honeypots"),
        ("fig11", "Fig. 11 — peers vs files (random)"),
        ("fig12", "Fig. 12 — peers vs files (popular)"),
    ];
    for (id, title) in titles {
        let Some((_, artefact)) = artefacts.iter().find(|(a, _)| a == id) else { continue };
        let _ = writeln!(md, "## {title}\n");
        let _ = writeln!(md, "* paper: `{}`", reference[*id]);
        let _ = writeln!(md, "* measured: {}\n", summary_line(id, &artefact.data));
        let _ = writeln!(md, "```text\n{}```\n", artefact.text);
    }
    let _ = writeln!(
        md,
        "## Raw data\n\n```json\n{}\n```",
        serde_json::to_string_pretty(
            &artefacts
                .iter()
                .map(|(id, a)| ((*id).to_string(), a.data.clone()))
                .collect::<serde_json::Map<_, _>>()
        )
        .expect("serialisable")
    );
    md
}
