//! Regenerates Fig. 8 (top peer START-UPLOAD series).

use edonkey_analysis::LogIndex;
use edonkey_experiments::figures;
use edonkey_experiments::{Measurement, Options};

fn main() {
    let opts = Options::from_args();
    let log = opts.run(Measurement::Distributed);
    let ix = LogIndex::build(&log);
    let artefact = figures::fig_top_peer(&log, &ix, 8);
    println!("{}", artefact.text);
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&artefact.data).expect("serialisable"));
    }
}
