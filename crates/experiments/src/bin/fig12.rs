//! Regenerates Fig. 12 (peers vs number of popular files).

use edonkey_analysis::LogIndex;
use edonkey_experiments::figures;
use edonkey_experiments::{Measurement, Options};

fn main() {
    let opts = Options::from_args();
    let log = opts.run(Measurement::Greedy);
    let ix = LogIndex::build(&log);
    let artefact = figures::fig_files(&ix, 12, opts.samples, opts.seed);
    println!("{}", artefact.text);
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&artefact.data).expect("serialisable"));
    }
}
