//! Exports a measurement as plain-text traces (query trace, shared-list
//! trace, file catalog) — the flat files a downstream analyst consumes.
//!
//! ```sh
//! cargo run --release -p edonkey-experiments --bin export -- --scale 0.05 --save data
//! # or reuse a saved run:
//! cargo run --release -p edonkey-experiments --bin export -- --load data
//! ```

use std::fs::File;
use std::io::BufWriter;

use edonkey_experiments::{Measurement, Options};
use honeypot::export::{write_file_catalog, write_query_trace, write_shared_list_trace};

fn main() {
    let opts = Options::from_args();
    let log = opts.run(Measurement::Distributed);
    let dir = std::path::Path::new("traces");
    std::fs::create_dir_all(dir).expect("create traces/");

    let queries = dir.join("queries.tsv");
    write_query_trace(&log, BufWriter::new(File::create(&queries).expect("create")))
        .expect("write query trace");
    let lists = dir.join("shared_lists.tsv");
    write_shared_list_trace(&log, BufWriter::new(File::create(&lists).expect("create")))
        .expect("write shared-list trace");
    let catalog = dir.join("files.tsv");
    write_file_catalog(&log, BufWriter::new(File::create(&catalog).expect("create")))
        .expect("write file catalog");

    println!(
        "exported {} query records, {} shared lists, {} files:",
        log.records.len(),
        log.shared_lists.len(),
        log.files.len()
    );
    for p in [&queries, &lists, &catalog] {
        let size = std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
        println!("  {} ({} bytes)", p.display(), size);
    }
}
