//! Regenerates Fig. 2 (distinct peers over time, distributed measurement).

use edonkey_analysis::LogIndex;
use edonkey_experiments::figures;
use edonkey_experiments::{Measurement, Options};

fn main() {
    let opts = Options::from_args();
    let log = opts.run(Measurement::Distributed);
    let ix = LogIndex::build(&log);
    let artefact = figures::fig_growth(&ix, 2);
    println!("{}", artefact.text);
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&artefact.data).expect("serialisable"));
    }
}
