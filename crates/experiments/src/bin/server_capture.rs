//! The server-side measurement: a ten-simulated-week server capture with
//! streaming compressed logs, plus the honeypot cross-validation figures
//! (the "Ten weeks in the life of an eDonkey server" modality run against
//! the same simulated network as the honeypot measurement).
//!
//! The run bypasses the run cache on purpose: the capture is a byproduct
//! of the simulation itself (the cache only stores the honeypot log), and
//! this binary's whole point is exercising the streaming write path.
//!
//! Usage:
//!   cargo run --release -p edonkey-experiments --bin server_capture -- \
//!     [--scale F] [--seed N] [--days D] [--out DIR] [--smoke]
//!
//! `--smoke` is the CI gate: a short capture at small scale that asserts
//! bounded peak RSS and cross-validation agreement within the documented
//! [`Tolerance`], exiting non-zero on any violation.

use std::time::Instant;

use edonkey_analysis::{cross_validate, ServerIndexBuilder, Tolerance};
use edonkey_experiments::scenarios;
use edonkey_sim::run_scenario_with_capture;
use honeypot::ServerLogReader;
use netsim::SimTime;

/// Peak-RSS ceiling for the smoke gate.  The capture streams frames to
/// disk, so memory is dominated by the simulation itself; generous enough
/// for CI noise, tight enough to catch "the capture buffers everything".
const SMOKE_MAX_RSS_KB: u64 = 2 * 1024 * 1024; // 2 GiB

/// High-water-mark resident set in kB (`VmHWM`); 0 without procfs.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

fn main() {
    let mut scale = 0.2;
    let mut seed = scenarios::DEFAULT_SEED;
    let mut days = scenarios::SERVER_CAPTURE_DAYS;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut smoke = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = || -> ! {
        eprintln!("usage: server_capture [--scale F] [--seed N] [--days D] [--out DIR] [--smoke]");
        std::process::exit(2)
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--days" => {
                i += 1;
                days = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&d| d > 0)
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out_dir = Some(args.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--smoke" => smoke = true,
            _ => usage(),
        }
        i += 1;
    }
    if smoke {
        // The CI gate: two simulated weeks at small scale — long enough
        // for multi-day discovery/diurnal statistics, short enough for CI.
        scale = 0.05;
        days = 14;
    }

    let dir = out_dir.unwrap_or_else(|| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .join("target")
            .join("server-capture")
    });

    let mut config = scenarios::server_ten_weeks(seed, scale);
    config.duration = SimTime::from_days(days);
    eprintln!(
        "[server-capture] {days} simulated days @ scale {scale}, seed {seed:#x} → {}",
        dir.display()
    );
    let t = Instant::now();
    let run = run_scenario_with_capture(config, &dir).expect("capture run");
    let sim_secs = t.elapsed().as_secs_f64();
    eprintln!(
        "[server-capture] simulated {} events in {sim_secs:.1}s ({:.0} events/s), peak RSS {:.1} MB",
        run.output.events_handled,
        run.output.events_handled as f64 / sim_secs.max(1e-9),
        peak_rss_kb() as f64 / 1024.0,
    );
    let stats = &run.capture;
    eprintln!(
        "[server-capture] capture: {} records in {} segment(s), {} → {} bytes \
         ({:.2} B/record, {:.2}x)",
        stats.records,
        stats.segments,
        stats.raw_bytes,
        stats.compressed_bytes,
        stats.bytes_per_record(),
        stats.raw_bytes as f64 / (stats.compressed_bytes as f64).max(1.0),
    );

    // Stream the capture back off disk into the server-side index — one
    // frame in memory at a time, never the whole capture.
    let t = Instant::now();
    let mut reader = ServerLogReader::open(&dir).expect("open capture");
    let mut builder = ServerIndexBuilder::new(SimTime::from_days(days));
    while let Some(r) = reader.next() {
        builder.push_record(&r);
    }
    assert!(!reader.truncated(), "fresh capture must read back cleanly");
    assert_eq!(reader.records_read(), stats.records, "reader must return every written record");
    let server_ix = builder.finish();
    eprintln!(
        "[server-capture] replayed {} records in {:.2}s",
        server_ix.records,
        t.elapsed().as_secs_f64()
    );

    // The cross-validation figures: the same run seen from the server and
    // from the honeypots.
    let cv = cross_validate(&server_ix, &run.output.log);
    println!("server-side capture, {} simulated days @ scale {scale}", days);
    println!("  server records        {}", server_ix.records);
    println!("  compressed            {:.2} B/record", stats.bytes_per_record());
    println!("  peak users            {}", server_ix.peak_users);
    println!("  peak indexed files    {}", server_ix.peak_indexed_files);
    println!("figure: peer discovery (server vs honeypots)");
    println!("  distinct peers        {} vs {}", cv.server_peers, cv.honeypot_peers);
    println!("  honeypot coverage     {:.3}", cv.peer_coverage);
    println!("  daily-cumulative corr {:.4}", cv.discovery_corr);
    println!("figure: diurnal oscillation");
    println!("  hour-of-day corr      {:.4}", cv.diurnal_corr);
    println!(
        "  day/night ratio       {:.2} (server) vs {:.2} (honeypots)",
        cv.server_day_night, cv.honeypot_day_night
    );
    println!("figure: file popularity");
    println!("  files joined          {}", cv.files_joined);
    println!("  rank correlation      {:.4}", cv.popularity_rank_corr);

    let tolerance = Tolerance::default();
    let violations = tolerance.violations(&cv);
    if smoke {
        let rss = peak_rss_kb();
        eprintln!(
            "[smoke] peak RSS {:.1} MB (ceiling {} MB)",
            rss as f64 / 1024.0,
            SMOKE_MAX_RSS_KB / 1024
        );
        let mut failed = false;
        if rss > SMOKE_MAX_RSS_KB {
            eprintln!("[smoke] FAIL: peak RSS {rss} kB above the {SMOKE_MAX_RSS_KB} kB ceiling");
            failed = true;
        }
        for v in &violations {
            eprintln!("[smoke] FAIL: cross-validation outside tolerance: {v}");
            failed = true;
        }
        if stats.records == 0 || stats.segments == 0 {
            eprintln!("[smoke] FAIL: empty capture");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("[smoke] PASS: modalities agree within tolerance ({tolerance:?})");
    } else if !violations.is_empty() {
        eprintln!("[server-capture] WARNING: cross-validation outside default tolerance:");
        for v in &violations {
            eprintln!("[server-capture]   {v}");
        }
    } else {
        eprintln!("[server-capture] modalities agree within default tolerance");
    }
}
