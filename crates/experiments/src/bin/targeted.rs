//! Topic-targeted measurement (the paper's §V future work): honeypots
//! covering every file matching a keyword, comparing the *replicated* and
//! *partitioned* coordination strategies.
//!
//! ```sh
//! cargo run --release -p edonkey-experiments --bin targeted -- --scale 0.3
//! ```

use edonkey_analysis::report::{ascii_table, format_count};
use edonkey_analysis::{basic_stats, file_peer_counts, peer_sets_by_file};
use edonkey_experiments::targeted::{targeted, Coordination};
use edonkey_experiments::Options;
use edonkey_sim::run_scenario;

fn main() {
    let opts = Options::from_args();
    let keyword = "concert";
    let mut rows = Vec::new();
    for strategy in [Coordination::Replicated, Coordination::Partitioned] {
        let (config, info) = targeted(opts.seed, opts.scale, keyword, 8, 24, 10, strategy);
        eprintln!(
            "[targeted] {} — {} honeypots, {} target files matching {keyword:?}",
            strategy.label(),
            info.honeypots,
            info.files.len()
        );
        let out = run_scenario(config);
        let stats = basic_stats(&out.log);
        let sets = peer_sets_by_file(&out.log);
        let counts = file_peer_counts(&sets);
        let covered = counts.iter().filter(|&&c| c > 0).count();
        rows.push(vec![
            strategy.label().to_string(),
            format_count(u64::from(stats.distinct_peers)),
            format!("{}/{}", covered, info.files.len()),
            format_count(counts.first().copied().unwrap_or(0)),
            format_count(*counts.last().unwrap_or(&0)),
            format_count(out.log.records.len() as u64),
        ]);
    }
    println!("Targeted measurement — keyword {keyword:?}, 8 honeypots, 10 days");
    println!(
        "{}",
        ascii_table(
            &[
                "coordination",
                "distinct peers",
                "files covered",
                "best file",
                "worst file",
                "records"
            ],
            &rows
        )
    );
    println!(
        "Replication multiplies per-file provider exposure; partitioning gives\n\
         each honeypot an exclusive, directly attributable slice of the topic."
    );
}
