//! Regenerates Table I (basic statistics of both measurements).

use edonkey_experiments::figures::table1;
use edonkey_experiments::{Measurement, Options};

fn main() {
    let opts = Options::from_args();
    let dist = opts.run(Measurement::Distributed);
    let greedy = opts.run(Measurement::Greedy);
    let artefact = table1(&dist, &greedy);
    println!("{}", artefact.text);
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&artefact.data).expect("serialisable"));
    }
}
