//! Co-interest analysis (the paper's §V agenda): relations between peers
//! that want the same files and between files wanted by the same peers,
//! computed over the greedy measurement's log.
//!
//! ```sh
//! cargo run --release -p edonkey-experiments --bin cointerest -- --scale 0.1
//! ```

use edonkey_analysis::cointerest::{co_interest, peer_degree_histogram};
use edonkey_analysis::report::{ascii_table, format_count};
use edonkey_experiments::{Measurement, Options};

fn main() {
    let opts = Options::from_args();
    let log = opts.run(Measurement::Greedy);

    let stats = co_interest(&log, 15);
    println!("Co-interest analysis over the greedy measurement");
    println!(
        "  querying peers: {}   with ≥2 files: {} ({:.1} %)   mean files/peer: {:.2}",
        format_count(stats.querying_peers),
        format_count(stats.multi_file_peers),
        100.0 * stats.multi_file_peers as f64 / stats.querying_peers.max(1) as f64,
        stats.mean_files_per_peer,
    );
    println!("  co-interested file pairs: {}", format_count(stats.file_pairs));

    let rows: Vec<Vec<String>> = stats
        .top_pairs
        .iter()
        .map(|p| {
            vec![
                log.files.name(p.file_a).to_string(),
                log.files.name(p.file_b).to_string(),
                format_count(p.common_peers),
                format!("{:.4}", p.jaccard),
            ]
        })
        .collect();
    println!("\nstrongest file pairs (by peers interested in both):");
    println!("{}", ascii_table(&["file A", "file B", "common peers", "jaccard"], &rows));

    println!("peer co-interest degree distribution (upper-bound degrees):");
    let hist = peer_degree_histogram(&log);
    let rows: Vec<Vec<String>> = hist.into_iter().map(|(b, c)| vec![b, format_count(c)]).collect();
    println!("{}", ascii_table(&["co-peers", "peers"], &rows));

    if opts.json {
        println!("{}", serde_json::to_string_pretty(&stats).expect("serialisable"));
    }
}
