//! Regenerates Fig. 3 (distinct peers over time, greedy measurement).

use edonkey_analysis::LogIndex;
use edonkey_experiments::figures;
use edonkey_experiments::{Measurement, Options};

fn main() {
    let opts = Options::from_args();
    let log = opts.run(Measurement::Greedy);
    let ix = LogIndex::build(&log);
    let artefact = figures::fig_growth(&ix, 3);
    println!("{}", artefact.text);
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&artefact.data).expect("serialisable"));
    }
}
