//! The paper's *distributed* scenario at reduced scale: 24 honeypots (12
//! no-content, 12 random-content) advertising the same four files on one
//! server for 32 days.
//!
//! Prints the strategy comparison (paper Figs. 5–7) and the growth curve
//! (Fig. 2).  Use `--scale`/`--seed` to change volume and randomness; at
//! `--scale 1.0` magnitudes approach the paper's (≈110 k peers).
//!
//! ```sh
//! cargo run --release --example distributed_measurement -- --scale 0.05
//! ```

use edonkey_honeypots::analysis::report::format_count;
use edonkey_honeypots::analysis::{
    distinct_peers_by_strategy, hourly_counts, messages_by_strategy, peer_growth,
};
use edonkey_honeypots::experiments::{Measurement, Options};
use edonkey_honeypots::platform::QueryKind;

fn main() {
    let mut opts = Options::from_args();
    if (opts.scale - 1.0).abs() < f64::EPSILON {
        // Examples default to a light footprint; ask for --scale 1.0 being
        // intentional via the dedicated experiment binaries.
        opts.scale = 0.05;
    }
    let log = opts.run(Measurement::Distributed);

    let growth = peer_growth(&log);
    println!(
        "distinct peers: {} (last-5-day rate {:.0}/day)",
        format_count(growth.total()),
        growth.tail_rate(5)
    );

    let hello = distinct_peers_by_strategy(&log, QueryKind::Hello);
    let upload = distinct_peers_by_strategy(&log, QueryKind::StartUpload);
    let parts = messages_by_strategy(&log, QueryKind::RequestPart);
    println!("\nstrategy comparison (random-content vs no-content):");
    println!("  distinct HELLO peers:        {:>9} vs {:>9}", hello.finals().0, hello.finals().1);
    println!("  distinct START-UPLOAD peers: {:>9} vs {:>9}", upload.finals().0, upload.finals().1);
    println!("  REQUEST-PART messages:       {:>9} vs {:>9}", parts.finals().0, parts.finals().1);
    println!(
        "  ⇒ random content {} (paper: random content wins)",
        if hello.random_wins() { "wins" } else { "does NOT win" }
    );

    let hourly = hourly_counts(&log, QueryKind::Hello);
    println!("\nday/night ratio of HELLO arrivals: {:.1}×", hourly.day_night_ratio());
}
