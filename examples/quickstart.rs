//! Quickstart: run a miniature honeypot measurement on the simulated
//! eDonkey network and print its basic statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use edonkey_honeypots::analysis::report::{ascii_table, format_bytes, format_count};
use edonkey_honeypots::analysis::{basic_stats, peer_growth};
use edonkey_honeypots::platform::QueryKind;
use edonkey_honeypots::sim::{run_scenario, ScenarioConfig};

fn main() {
    // A two-day measurement with one no-content honeypot advertising one
    // file, at reduced volume so it finishes in a blink.
    let config = ScenarioConfig::tiny(42);
    println!("running a tiny measurement: 1 honeypot, {} days…", config.duration.as_days());
    let out = run_scenario(config);

    let stats = basic_stats(&out.log);
    let rows = vec![
        vec!["distinct peers".into(), format_count(u64::from(stats.distinct_peers))],
        vec!["distinct files".into(), format_count(stats.distinct_files as u64)],
        vec!["space of distinct files".into(), format_bytes(stats.distinct_files_bytes)],
        vec![
            "HELLO / START-UPLOAD / REQUEST-PART".into(),
            format!(
                "{} / {} / {}",
                out.log.records_of(QueryKind::Hello).count(),
                out.log.records_of(QueryKind::StartUpload).count(),
                out.log.records_of(QueryKind::RequestPart).count()
            ),
        ],
    ];
    println!("{}", ascii_table(&["statistic", "value"], &rows));

    let growth = peer_growth(&out.log);
    println!("peers per day: {:?}", growth.new_per_day);
    println!(
        "simulation: {} arrivals, {} sessions, {} detections",
        out.stats.arrivals,
        out.stats.sessions,
        out.stats.detections_nc + out.stats.detections_rc
    );
}
