//! A live control-plane measurement on loopback TCP: manager daemon,
//! in-process eDonkey server and three supervised honeypot agents — one
//! of which is crash-injected to show the heartbeat-deadline → dead →
//! relaunch → resume cycle end to end.
//!
//! ```sh
//! cargo run --release --example live_loopback
//! ```
//!
//! The example finishes by replaying the agents' pre-transport chunk
//! journal through a fresh in-process manager and checking the result
//! against the live measurement — the proof that the control plane moved
//! every record exactly once, unmodified, in order.

use std::time::Duration;

use edonkey_honeypots::control::{FaultPlan, LoopbackDeployment, LoopbackOptions, LoopbackSpec};
use edonkey_honeypots::platform::{AdvertisedFile, ContentStrategy, FileStrategy};
use edonkey_honeypots::proto::FileId;
use netsim::SimTime;

fn main() {
    let file = |i: usize| FileId::from_seed(format!("live-example-{i}").as_bytes());
    let specs: Vec<LoopbackSpec> = (0..3)
        .map(|i| LoopbackSpec {
            content: ContentStrategy::NoContent,
            files: FileStrategy::Fixed(vec![AdvertisedFile::new(
                file(i),
                format!("example file {i}.avi"),
                42_000_000,
            )]),
            // The last agent dies right after its first upload: watch the
            // daemon declare it dead and bring it back.
            fault: if i == 2 {
                FaultPlan { kill_after_chunk: Some(0), ..FaultPlan::default() }
            } else {
                FaultPlan::default()
            },
        })
        .collect();

    let deployment =
        LoopbackDeployment::start(specs, LoopbackOptions::default()).expect("start deployment");
    assert!(deployment.wait_ready(Duration::from_secs(10)), "agents never became ready");
    println!("deployment up: daemon at {}, 3 agents ready", deployment.daemon().addr());

    for i in 0..3u32 {
        deployment.drive_download(&format!("example-peer-{i}"), i, file(i as usize), 1, &[]);
    }
    deployment.wait_chunks(3, Duration::from_secs(10));
    println!("round 1 merged ({} chunks)", deployment.daemon().chunks_collected());

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while deployment.daemon().relaunch_count() < 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    println!("agent 2 crashed and was relaunched ({}×)", deployment.daemon().relaunch_count());
    deployment.wait_ready(Duration::from_secs(10));
    deployment.drive_download("example-peer-revisit", 2, file(2), 1, &[]);
    deployment.wait_chunks(4, Duration::from_secs(10));

    let outcome = deployment.finish(SimTime::from_secs(60), 4, 1, Duration::from_secs(5));
    println!(
        "measurement: {} records, {} distinct peers, {} honeypots",
        outcome.log.records.len(),
        outcome.log.distinct_peers,
        outcome.log.honeypots.len()
    );
    match outcome.replay_divergence() {
        None => println!("journal replay matches the live measurement: transport was lossless"),
        Some(diff) => println!("DIVERGENCE: {diff}"),
    }
    println!("\nplatform metrics:\n{}", outcome.metrics.to_json());
}
