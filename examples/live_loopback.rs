//! A live control-plane measurement on loopback TCP: manager daemon,
//! in-process eDonkey server and three supervised honeypot agents — one
//! of which is crash-injected to show the heartbeat-deadline → dead →
//! relaunch → resume cycle end to end.
//!
//! ```sh
//! cargo run --release --example live_loopback
//! # crash-safe variant: durable agent spools + manager checkpoint, with
//! # a manager kill and recovery in the middle of the measurement
//! cargo run --release --example live_loopback -- --durable /tmp/edhp-live
//! ```
//!
//! The example finishes by replaying the agents' pre-transport chunk
//! journal through a fresh in-process manager and checking the result
//! against the live measurement — the proof that the control plane moved
//! every record exactly once, unmodified, in order (in the durable
//! variant: across a manager restart too).

use std::time::Duration;

use edonkey_honeypots::control::{
    CheckpointOptions, FaultPlan, LoopbackDeployment, LoopbackOptions, LoopbackSpec,
};
use edonkey_honeypots::platform::{AdvertisedFile, ContentStrategy, FileStrategy};
use edonkey_honeypots::proto::FileId;
use netsim::SimTime;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let durable_root = match args.as_slice() {
        [] => None,
        [flag, dir] if flag == "--durable" => Some(std::path::PathBuf::from(dir)),
        _ => {
            eprintln!("usage: live_loopback [--durable DIR]");
            std::process::exit(2);
        }
    };

    let file = |i: usize| FileId::from_seed(format!("live-example-{i}").as_bytes());
    let specs: Vec<LoopbackSpec> = (0..3)
        .map(|i| LoopbackSpec {
            content: ContentStrategy::NoContent,
            files: FileStrategy::Fixed(vec![AdvertisedFile::new(
                file(i),
                format!("example file {i}.avi"),
                42_000_000,
            )]),
            // The last agent dies right after its first upload: watch the
            // daemon declare it dead and bring it back.
            fault: if i == 2 {
                FaultPlan { kill_after_chunk: Some(0), ..FaultPlan::default() }
            } else {
                FaultPlan::default()
            },
            impair: None,
            spool_faults: None,
        })
        .collect();

    let mut opts = LoopbackOptions::default();
    if let Some(root) = &durable_root {
        opts.daemon.checkpoint = Some(CheckpointOptions::new(root.join("ckpt")));
        opts.spool_dir = Some(root.join("spool"));
    }
    let mut deployment = LoopbackDeployment::start(specs, opts).expect("start deployment");
    assert!(deployment.wait_ready(Duration::from_secs(10)), "agents never became ready");
    println!("deployment up: daemon at {}, 3 agents ready", deployment.daemon().addr());

    for i in 0..3u32 {
        deployment.drive_download(&format!("example-peer-{i}"), i, file(i as usize), 1, &[]);
    }
    deployment.wait_chunks(3, Duration::from_secs(10));
    println!("round 1 merged ({} chunks)", deployment.daemon().chunks_collected());

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while deployment.daemon().relaunch_count() < 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    println!("agent 2 crashed and was relaunched ({}×)", deployment.daemon().relaunch_count());
    deployment.wait_ready(Duration::from_secs(10));
    deployment.drive_download("example-peer-revisit", 2, file(2), 1, &[]);
    deployment.wait_chunks(4, Duration::from_secs(10));

    if durable_root.is_some() {
        // The restart-recovery cycle: kill the manager without a drain,
        // then bring up a fresh one from the checkpoint + chunk WAL.  The
        // merges so far must survive and the agents must re-register
        // against the new address (their spools intact).
        std::thread::sleep(Duration::from_millis(300));
        let merged = deployment.daemon().chunks_collected();
        deployment.crash_daemon();
        println!("manager crashed with {merged} chunks merged; recovering …");
        deployment.recover_daemon().expect("recover daemon");
        assert!(
            deployment.wait_ready(Duration::from_secs(30)),
            "agents never re-registered after recovery"
        );
        assert_eq!(
            deployment.daemon().chunks_collected(),
            merged,
            "WAL replay must restore the pre-crash merges"
        );
        println!("manager recovered: {merged} chunks restored from the WAL, agents re-registered");
        deployment.drive_download("example-peer-postcrash", 0, file(0), 1, &[]);
        deployment.wait_chunks(merged + 1, Duration::from_secs(20));
    }

    let outcome = deployment.finish(SimTime::from_secs(60), 4, 1, Duration::from_secs(5));
    println!(
        "measurement: {} records, {} distinct peers, {} honeypots",
        outcome.log.records.len(),
        outcome.log.distinct_peers,
        outcome.log.honeypots.len()
    );
    match outcome.replay_divergence() {
        None => println!("journal replay matches the live measurement: transport was lossless"),
        Some(diff) => {
            eprintln!("DIVERGENCE: {diff}");
            std::process::exit(1);
        }
    }
    println!("\nplatform metrics:\n{}", outcome.metrics.to_json());
}
