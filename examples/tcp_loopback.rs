//! The honeypot platform over **real TCP sockets** on loopback: an eDonkey
//! index server, one random-content honeypot, and two scripted peers
//! speaking the genuine binary wire protocol (paper Fig. 1 message flow).
//!
//! ```sh
//! cargo run --release --example tcp_loopback
//! ```

use std::net::SocketAddr;
use std::time::Duration;

use edonkey_honeypots::net::{HoneypotHost, NetServer, ScriptedPeer};
use edonkey_honeypots::platform::{
    AdvertisedFile, ContentStrategy, Honeypot, HoneypotConfig, HoneypotId, IpHasher, QueryKind,
    ServerInfo,
};
use edonkey_honeypots::proto::{FileId, Ipv4};
use netsim::Rng;

fn main() {
    // 1. A real TCP eDonkey index server on an ephemeral loopback port.
    let server = NetServer::start().expect("bind loopback");
    println!("index server listening on {}", server.addr());

    // 2. A random-content honeypot advertising one fake file, with actual
    //    random bytes in its SENDING-PART answers.
    let file = FileId::from_seed(b"very-popular-movie");
    let mut config = HoneypotConfig::fixed(
        HoneypotId(0),
        ContentStrategy::RandomContent,
        vec![AdvertisedFile::new(file, "very popular movie.avi", 734_003_200)],
    );
    config.materialize_content = true;
    let hp = Honeypot::new(
        config,
        ServerInfo::new("loopback", Ipv4::new(127, 0, 0, 1), server.addr().port()),
        IpHasher::from_seed(0xACE),
        Rng::seed_from(7),
    );
    let host = HoneypotHost::start(hp, server.addr()).expect("start honeypot");
    assert!(host.wait_connected(Duration::from_secs(5)), "honeypot failed to log in");
    println!("honeypot connected; peers reach it at {}", host.peer_addr());

    // 3. Scripted peers discover the honeypot through the server and run
    //    the full download message flow.
    for name in ["alice", "bob"] {
        let mut peer = ScriptedPeer::login(server.addr(), name).expect("peer login");
        let sources = peer.get_sources(file).expect("get sources");
        println!("{name}: server lists {} provider(s) for the file", sources.len());
        let provider: SocketAddr = host.peer_addr();
        let attempt = peer
            .attempt_download(
                provider,
                file,
                3,
                Duration::from_millis(500),
                &[(FileId::from_seed(name.as_bytes()), "my shared song.mp3", 5_000_000)],
            )
            .expect("download attempt");
        println!(
            "{name}: hello_answered={} accepted={} asked_for_list={} received {} bytes over {} answered requests",
            attempt.hello_answered,
            attempt.upload_accepted,
            attempt.was_asked_shared_files,
            attempt.bytes_received,
            attempt.answered_requests,
        );
    }

    // 4. What did the honeypot log?
    let chunk = host.stop();
    let hello = chunk.records.iter().filter(|r| r.kind == QueryKind::Hello).count();
    let uploads = chunk.records.iter().filter(|r| r.kind == QueryKind::StartUpload).count();
    let parts = chunk.records.iter().filter(|r| r.kind == QueryKind::RequestPart).count();
    println!(
        "\nhoneypot log: {hello} HELLO, {uploads} START-UPLOAD, {parts} REQUEST-PART from {} shared lists, {} distinct files seen",
        chunk.shared_lists.len(),
        chunk.files.len(),
    );
    server.stop();
}
