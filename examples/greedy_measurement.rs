//! The paper's *greedy* scenario at reduced scale: one honeypot that
//! starts from three seed files, adopts every file appearing in contacting
//! peers' shared lists during day 1, then freezes and just records.
//!
//! ```sh
//! cargo run --release --example greedy_measurement -- --scale 0.02
//! ```

use edonkey_honeypots::analysis::report::{format_bytes, format_count};
use edonkey_honeypots::analysis::{basic_stats, file_peer_counts, peer_growth, peer_sets_by_file};
use edonkey_honeypots::experiments::{Measurement, Options};

fn main() {
    let mut opts = Options::from_args();
    if (opts.scale - 1.0).abs() < f64::EPSILON {
        opts.scale = 0.02;
    }
    let log = opts.run(Measurement::Greedy);

    let stats = basic_stats(&log);
    println!(
        "greedy honeypot: seeds 3 → advertised {} files after day-1 adoption",
        format_count(u64::from(stats.shared_files))
    );
    println!(
        "observed {} distinct peers and {} distinct files ({})",
        format_count(u64::from(stats.distinct_peers)),
        format_count(stats.distinct_files as u64),
        format_bytes(stats.distinct_files_bytes)
    );

    let growth = peer_growth(&log);
    println!("\nnew peers per day (note the day-1 initialisation dip, paper Fig. 3):");
    for (day, n) in growth.new_per_day.iter().enumerate() {
        println!("  day {day:>2}: {}", format_count(*n));
    }

    let sets = peer_sets_by_file(&log);
    let counts = file_peer_counts(&sets);
    println!(
        "\nper-file interest over {} queried files: best {}, median {}, worst {}",
        counts.len(),
        counts.first().copied().unwrap_or(0),
        counts.get(counts.len() / 2).copied().unwrap_or(0),
        counts.last().copied().unwrap_or(0)
    );
}
