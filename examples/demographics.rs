//! Peer-population demographics over a distributed measurement: high/low
//! ID split, client software, per-peer query-volume distribution, honeypot
//! load balance, and co-interest structure.
//!
//! ```sh
//! cargo run --release --example demographics -- --scale 0.05
//! ```

use edonkey_honeypots::analysis::report::{ascii_table, format_count};
use edonkey_honeypots::analysis::{
    client_software, co_interest, honeypot_load_gini, id_status_breakdown,
    queries_per_peer_histogram,
};
use edonkey_honeypots::experiments::{Measurement, Options};
use edonkey_honeypots::platform::QueryKind;

fn main() {
    let mut opts = Options::from_args();
    if (opts.scale - 1.0).abs() < f64::EPSILON {
        opts.scale = 0.05;
    }
    let log = opts.run(Measurement::Distributed);

    let ids = id_status_breakdown(&log);
    println!(
        "ID status: {} high, {} low ({:.1} % behind NAT)",
        format_count(ids.high),
        format_count(ids.low),
        100.0 * ids.low_fraction()
    );

    println!("\nclient software (distinct peers):");
    let rows: Vec<Vec<String>> = client_software(&log)
        .into_iter()
        .take(10)
        .map(|(name, count)| vec![name, format_count(count)])
        .collect();
    println!("{}", ascii_table(&["client", "peers"], &rows));

    println!("HELLO messages per peer (log₂ buckets):");
    let rows: Vec<Vec<String>> = queries_per_peer_histogram(&log, QueryKind::Hello)
        .into_iter()
        .map(|(bucket, count)| vec![bucket, format_count(count)])
        .collect();
    println!("{}", ascii_table(&["messages", "peers"], &rows));

    println!(
        "honeypot load balance: Gini = {:.3} (0 = even, 1 = one honeypot takes all)",
        honeypot_load_gini(&log)
    );

    let ci = co_interest(&log, 5);
    println!(
        "\nco-interest: {} querying peers, {} with ≥2 files, {} co-interested file pairs",
        format_count(ci.querying_peers),
        format_count(ci.multi_file_peers),
        format_count(ci.file_pairs)
    );
}
