//! Acceptance tests of the windowed, pipelined upload protocol (PR 6):
//! a raw control connection impersonates an agent so every protocol
//! transition — window grant, cumulative acks, duplicates, holes,
//! reconnect resume — is observed directly on the wire, not through the
//! agent runtime.
//!
//! The `swarm_` test is `#[ignore]`d by default: it supervises hundreds
//! of concurrent windowed uploaders and exists for the CI smoke job
//! (`cargo test --release --test windowed_upload -- --ignored`).

use std::time::Duration;

use edonkey_honeypots::control::{
    AgentConfig, ConnEvent, ControlConn, ControlMessage, Daemon, DaemonConfig,
};
use edonkey_honeypots::platform::log::{FileTable, SharedLists};
use edonkey_honeypots::platform::{
    ContentStrategy, FileStrategy, HoneypotId, LogChunk, ServerInfo,
};
use edonkey_honeypots::proto::Ipv4;
use netsim::SimTime;

fn test_config(id: u32) -> AgentConfig {
    AgentConfig {
        id: HoneypotId(id),
        content: ContentStrategy::NoContent,
        files: FileStrategy::Fixed(Vec::new()),
        server: ServerInfo::new("window-test", Ipv4::new(127, 0, 0, 1), 4661),
        ip_salt: 7,
        rng_seed: 7 + id as u64,
        heartbeat_ms: 50,
        collect_ms: 60,
        client_name: format!("window-agent-{id}"),
    }
}

/// A daemon whose only agents are the raw connections the test drives:
/// the launcher is a no-op and the heartbeat timeout is effectively off.
fn raw_daemon(cfg: DaemonConfig, agents: u32) -> Daemon {
    let configs = (0..agents).map(test_config).collect();
    Daemon::start(
        DaemonConfig { heartbeat_timeout_ms: 60_000, ..cfg },
        configs,
        Box::new(|_, _, _| {}),
    )
    .expect("start daemon")
}

fn empty_chunk(agent: u32) -> LogChunk {
    LogChunk {
        honeypot: HoneypotId(agent),
        server: test_config(agent).server,
        records: Vec::new(),
        shared_lists: SharedLists::new(),
        peer_names: Vec::new(),
        files: FileTable::new(),
    }
}

fn upload(agent: u32, seq: u64) -> ControlMessage {
    ControlMessage::LogUpload { agent, seq, chunk: empty_chunk(agent) }
}

/// Polls `conn` until a message matching `pred` arrives (5 s budget).
fn wait_for(conn: &mut ControlConn, pred: impl Fn(&ControlMessage) -> bool) -> ControlMessage {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        for ev in conn.poll_until(deadline).expect("poll") {
            if let ConnEvent::Msg(m) = ev {
                if pred(&m) {
                    return m;
                }
            }
        }
        assert!(std::time::Instant::now() < deadline, "expected control message never arrived");
    }
}

/// The pipelining claim itself: a whole window of uploads leaves the
/// agent back-to-back, with no ack in between, and the daemon merges
/// every sequence in order and answers with cumulative acks whose
/// frontier reaches the end of the window.
#[test]
fn full_window_pipelines_with_cumulative_acks() {
    let daemon = raw_daemon(DaemonConfig { upload_window: 8, ..DaemonConfig::default() }, 1);

    let mut conn = ControlConn::connect(daemon.addr()).expect("connect");
    conn.set_read_timeout(Duration::from_millis(10)).expect("timeout");
    conn.send(&ControlMessage::Register { agent: 0, incarnation: 0, resume: false })
        .expect("register");

    // The grant: the daemon advertises its configured window size.
    let ack = wait_for(&mut conn, |m| matches!(m, ControlMessage::RegisterAck { .. }));
    let ControlMessage::RegisterAck { agent: 0, next_seq: 0, window } = ack else {
        panic!("unexpected register ack: {ack:?}");
    };
    assert_eq!(window, 8, "the daemon must grant its configured window");

    // Six uploads, written in one burst before reading a single ack.
    for seq in 0..6u64 {
        conn.send(&upload(0, seq)).expect("pipelined upload");
    }
    wait_for(&mut conn, |m| matches!(m, ControlMessage::ChunkAck { next_seq: 6, .. }));

    conn.send(&ControlMessage::Goodbye { agent: 0, final_seq: 6 }).expect("goodbye");
    let (_log, metrics, order) =
        daemon.finish(SimTime::from_secs(60), 4, 1, Duration::from_millis(500));

    assert_eq!(metrics.agents[0].chunks_merged, 6);
    assert_eq!(metrics.agents[0].merged_ranges, vec![(0, 5)], "one contiguous merge range");
    assert_eq!(metrics.double_merge_violation(), None);
    assert_eq!(
        order,
        (0..6u64).map(|s| (0u32, s)).collect::<Vec<_>>(),
        "merge order is send order"
    );
    assert!(metrics.agents[0].window_peak >= 1, "occupancy gauge must have registered traffic");
}

/// Duplicates and holes inside a window: a re-sent merged sequence is
/// re-acknowledged at the unchanged frontier (never re-merged); a
/// sequence past the frontier is discarded and answered with a
/// `ChunkRetry` naming the frontier (go-back-N), and neither event
/// counts as a transport retry.
#[test]
fn duplicate_and_reordered_chunks_within_window() {
    let daemon = raw_daemon(DaemonConfig::default(), 1);

    let mut conn = ControlConn::connect(daemon.addr()).expect("connect");
    conn.set_read_timeout(Duration::from_millis(10)).expect("timeout");
    conn.send(&ControlMessage::Register { agent: 0, incarnation: 0, resume: false })
        .expect("register");
    wait_for(&mut conn, |m| matches!(m, ControlMessage::RegisterAck { next_seq: 0, .. }));

    // seq 0 merges; the frontier advances to 1.
    conn.send(&upload(0, 0)).expect("seq 0");
    wait_for(&mut conn, |m| matches!(m, ControlMessage::ChunkAck { next_seq: 1, .. }));

    // A duplicate of seq 0 is re-acked at the same frontier.
    conn.send(&upload(0, 0)).expect("dup seq 0");
    wait_for(&mut conn, |m| matches!(m, ControlMessage::ChunkAck { next_seq: 1, .. }));

    // seq 2 arrives before seq 1: the daemon discards it and asks for
    // the frontier back (go-back-N).
    conn.send(&upload(0, 2)).expect("hole");
    wait_for(&mut conn, |m| matches!(m, ControlMessage::ChunkRetry { seq: 1 }));

    // Filling the hole resumes the cumulative advance; seq 2 must be
    // re-sent because the daemon never buffered it.
    conn.send(&upload(0, 1)).expect("seq 1");
    wait_for(&mut conn, |m| matches!(m, ControlMessage::ChunkAck { next_seq: 2, .. }));
    conn.send(&upload(0, 2)).expect("seq 2 again");
    wait_for(&mut conn, |m| matches!(m, ControlMessage::ChunkAck { next_seq: 3, .. }));

    conn.send(&ControlMessage::Goodbye { agent: 0, final_seq: 3 }).expect("goodbye");
    let (_log, metrics, order) =
        daemon.finish(SimTime::from_secs(60), 4, 1, Duration::from_millis(500));

    assert_eq!(metrics.agents[0].merged_ranges, vec![(0, 2)]);
    assert_eq!(metrics.agents[0].duplicate_chunks, 1, "exactly the one scripted duplicate");
    assert_eq!(
        metrics.agents[0].chunk_retries, 0,
        "holes are window reordering, not transport damage"
    );
    assert_eq!(metrics.double_merge_violation(), None);
    assert_eq!(order, vec![(0, 0), (0, 1), (0, 2)], "merge order never admits the hole");
}

/// Reconnect mid-window: the connection dies with sequences acknowledged
/// cumulatively, the successor registers with `resume` and is told the
/// frontier, and a retransmit from before the frontier is re-acked but
/// never re-merged.
#[test]
fn reconnect_resumes_from_cumulative_frontier() {
    let daemon = raw_daemon(DaemonConfig::default(), 1);

    // First incarnation: two pipelined uploads, cumulatively acked.
    let mut conn = ControlConn::connect(daemon.addr()).expect("connect");
    conn.set_read_timeout(Duration::from_millis(10)).expect("timeout");
    conn.send(&ControlMessage::Register { agent: 0, incarnation: 0, resume: false })
        .expect("register");
    wait_for(&mut conn, |m| matches!(m, ControlMessage::RegisterAck { next_seq: 0, .. }));
    conn.send(&upload(0, 0)).expect("seq 0");
    conn.send(&upload(0, 1)).expect("seq 1");
    wait_for(&mut conn, |m| matches!(m, ControlMessage::ChunkAck { next_seq: 2, .. }));

    // The connection dies without a Goodbye — mid-window, as far as the
    // agent side knows.
    drop(conn);

    // The successor resumes and learns the frontier from its ack.
    let mut conn = ControlConn::connect(daemon.addr()).expect("reconnect");
    conn.set_read_timeout(Duration::from_millis(10)).expect("timeout");
    conn.send(&ControlMessage::Register { agent: 0, incarnation: 1, resume: true })
        .expect("re-register");
    wait_for(&mut conn, |m| matches!(m, ControlMessage::RegisterAck { next_seq: 2, .. }));

    // A cautious retransmit from before the frontier (the spool still
    // held it) is re-acked at the frontier, not re-merged.
    conn.send(&upload(0, 1)).expect("retransmit");
    wait_for(&mut conn, |m| matches!(m, ControlMessage::ChunkAck { next_seq: 2, .. }));

    // New traffic continues from the frontier.
    conn.send(&upload(0, 2)).expect("seq 2");
    conn.send(&upload(0, 3)).expect("seq 3");
    wait_for(&mut conn, |m| matches!(m, ControlMessage::ChunkAck { next_seq: 4, .. }));

    conn.send(&ControlMessage::Goodbye { agent: 0, final_seq: 4 }).expect("goodbye");
    let (_log, metrics, _order) =
        daemon.finish(SimTime::from_secs(60), 4, 1, Duration::from_millis(500));

    assert_eq!(metrics.agents[0].merged_ranges, vec![(0, 3)]);
    assert_eq!(metrics.agents[0].duplicate_chunks, 1, "the cross-reconnect retransmit");
    assert!(metrics.agents[0].resumes >= 1, "the re-registration must count as a resume");
    assert_eq!(metrics.double_merge_violation(), None);
}

/// The scale smoke: hundreds of concurrent windowed uploaders against
/// one daemon, every chunk merged exactly once and in a per-agent order
/// consistent with the sequence numbers.  Run by the CI smoke job with
/// `--ignored`; bump `AGENTS` locally to probe the 1,000-agent claim.
#[test]
#[ignore = "scale smoke; run explicitly (CI: cargo test --release -- --ignored)"]
fn swarm_256_windowed_agents_merge_exactly_once() {
    const AGENTS: u32 = 256;
    const CHUNKS: u64 = 20;
    const WINDOW: u64 = 16;

    let daemon = raw_daemon(
        DaemonConfig { upload_window: WINDOW as u32, ..DaemonConfig::default() },
        AGENTS,
    );
    let addr = daemon.addr();

    let threads: Vec<_> = (0..AGENTS)
        .map(|agent| {
            std::thread::spawn(move || {
                let mut conn = ControlConn::connect(addr).expect("connect");
                conn.set_read_timeout(Duration::from_millis(5)).expect("timeout");
                conn.send(&ControlMessage::Register { agent, incarnation: 0, resume: false })
                    .expect("register");
                let ack = wait_for(&mut conn, |m| matches!(m, ControlMessage::RegisterAck { .. }));
                let ControlMessage::RegisterAck { next_seq: 0, window: granted, .. } = ack else {
                    panic!("unexpected register ack: {ack:?}");
                };
                let window = u64::from(granted).min(WINDOW);

                // The windowed upload loop every agent runs: keep up to
                // `window` sequences in flight, advance on cumulative
                // acks, rewind on go-back-N retries.
                let mut next_send = 0u64;
                let mut next_ack = 0u64;
                let deadline = std::time::Instant::now() + Duration::from_secs(120);
                while next_ack < CHUNKS {
                    while next_send < CHUNKS && next_send - next_ack < window {
                        conn.send(&upload(agent, next_send)).expect("upload");
                        next_send += 1;
                    }
                    for ev in conn.poll().expect("poll") {
                        match ev {
                            ConnEvent::Msg(ControlMessage::ChunkAck { next_seq, .. }) => {
                                next_ack = next_ack.max(next_seq);
                            }
                            ConnEvent::Msg(ControlMessage::ChunkRetry { seq }) => {
                                next_send = next_send.min(seq);
                            }
                            _ => {}
                        }
                    }
                    assert!(
                        std::time::Instant::now() < deadline,
                        "agent {agent} stalled at ack frontier {next_ack}"
                    );
                }
                conn.send(&ControlMessage::Goodbye { agent, final_seq: CHUNKS }).expect("goodbye");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("agent thread");
    }

    let (_log, metrics, order) =
        daemon.finish(SimTime::from_secs(60), 4, 1, Duration::from_secs(2));

    assert_eq!(metrics.double_merge_violation(), None);
    for (agent, m) in metrics.agents.iter().enumerate() {
        assert_eq!(m.chunks_merged, CHUNKS, "agent {agent} must merge every chunk");
        assert_eq!(
            m.merged_ranges,
            vec![(0, CHUNKS - 1)],
            "agent {agent} merges must be contiguous"
        );
    }
    assert_eq!(order.len(), (AGENTS as usize) * (CHUNKS as usize));
    // Per-agent merge order must follow the sequence numbers even though
    // the global interleaving is arbitrary.
    let mut next = vec![0u64; AGENTS as usize];
    for (agent, seq) in order {
        assert_eq!(seq, next[agent as usize], "agent {agent} merged out of order");
        next[agent as usize] += 1;
    }
    assert!(metrics.connections_peak >= u64::from(AGENTS), "every agent held a connection");
}
