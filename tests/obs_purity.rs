//! Purity pin for the observability layer (PR 10): turning tracing,
//! histograms, and the live scrape endpoint on — at any verbosity —
//! must not perturb a single byte of measurement output or control
//! traffic.
//!
//! Three paired runs enforce the contract:
//!
//! 1. the simulator, obs `Off` vs obs `Trace` → bit-identical
//!    serialized `MeasurementLog`s;
//! 2. the live daemon over real TCP with a fixed chunk workload,
//!    obs `Off` vs obs `Trace` **with the scraper running** →
//!    bit-identical merged logs and identical `merged_ranges`;
//! 3. control-frame encoding sampled across every verbosity level →
//!    byte-identical frames.
//!
//! The observability level is process-global, so every test here
//! serializes on [`obs_lock`] and restores `Level::Off` before
//! releasing it.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use edonkey_honeypots::control::{
    ConnEvent, ControlConn, ControlMessage, Daemon, DaemonConfig, ObsConfig,
};
use edonkey_honeypots::platform::log::{HoneypotLog, QueryRecord, FILE_NONE};
use edonkey_honeypots::platform::{
    storage, ContentStrategy, FileStrategy, HoneypotId, IdStatus, IpHasher, LogChunk, QueryKind,
    ServerInfo,
};
use edonkey_honeypots::proto::{FileId, Ipv4, UserId};
use edonkey_honeypots::sim::{run_scenario, ScenarioConfig};
use netsim::obs::{set_level, Level};
use netsim::SimTime;

/// Serializes tests that flip the process-global observability level.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores `Level::Off` even if the test body panics, so one failure
/// cannot leak verbosity into an unrelated test.
struct LevelReset;

impl Drop for LevelReset {
    fn drop(&mut self) {
        set_level(Level::Off);
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("edhp-obs-purity-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Serialized bytes of a measurement log, via the storage codec the
/// platform itself persists with.
fn log_bytes(log: &edonkey_honeypots::platform::MeasurementLog, path: &std::path::Path) -> Vec<u8> {
    storage::save(log, path).expect("save measurement log");
    std::fs::read(path).expect("read serialized log")
}

// ---------------------------------------------------------------------------
// 1. Simulator purity
// ---------------------------------------------------------------------------

/// The same scenario, run dark and run at full verbosity, serializes to
/// the same bytes: sim-side span events observe the run without
/// steering it.
#[test]
fn sim_output_is_bit_identical_across_verbosity() {
    let _guard = obs_lock();
    let _reset = LevelReset;
    let dir = scratch_dir("sim");

    set_level(Level::Off);
    let dark = run_scenario(ScenarioConfig::tiny(42).scaled(0.3));

    set_level(Level::Trace);
    let loud = run_scenario(ScenarioConfig::tiny(42).scaled(0.3));

    assert!(!dark.log.records.is_empty(), "the paired scenario must produce traffic");
    assert_eq!(
        log_bytes(&dark.log, &dir.join("dark.bin")),
        log_bytes(&loud.log, &dir.join("loud.bin")),
        "sim measurement bytes must not depend on the observability level"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// 2. Live daemon purity
// ---------------------------------------------------------------------------

fn synthetic_chunk(agent: u32, records: usize) -> LogChunk {
    let server = ServerInfo::new("purity", Ipv4::new(127, 0, 0, 1), 4661);
    let hasher = IpHasher::from_seed(9);
    let mut log = HoneypotLog::new(HoneypotId(agent), server);
    let name = log.intern_name("purity-peer");
    let file = log.files.intern(FileId::from_seed(b"purity"), "purity.avi", 1_000_000);
    for i in 0..records {
        log.push(QueryRecord {
            at: SimTime::from_millis(i as u64),
            kind: QueryKind::Hello,
            peer: hasher.hash(Ipv4::new(10, 0, (i / 256) as u8, (i % 256) as u8)),
            port: 4662,
            id_status: IdStatus::High,
            user_id: UserId::from_seed(b"purity-user"),
            name,
            version: 0x49,
            file: if i % 2 == 0 { file } else { FILE_NONE },
        });
    }
    log.take_chunk()
}

fn test_agent_config(id: u32) -> edonkey_honeypots::control::AgentConfig {
    edonkey_honeypots::control::AgentConfig {
        id: HoneypotId(id),
        content: ContentStrategy::NoContent,
        files: FileStrategy::Fixed(Vec::new()),
        server: ServerInfo::new("purity", Ipv4::new(127, 0, 0, 1), 4661),
        ip_salt: 7,
        rng_seed: 7 + id as u64,
        heartbeat_ms: 50,
        collect_ms: 60,
        client_name: format!("purity-agent-{id}"),
    }
}

fn wait_for(conn: &mut ControlConn, pred: impl Fn(&ControlMessage) -> bool) -> ControlMessage {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        for ev in conn.poll_until(deadline).expect("poll") {
            if let ConnEvent::Msg(m) = ev {
                if pred(&m) {
                    return m;
                }
            }
        }
        assert!(std::time::Instant::now() < deadline, "expected control message never arrived");
    }
}

/// Runs the fixed three-agent chunk workload against a fresh daemon and
/// returns the serialized merged log plus per-agent merge ranges.
fn run_fixed_workload(
    obs: Option<ObsConfig>,
    path: &std::path::Path,
) -> (Vec<u8>, Vec<Vec<(u64, u64)>>) {
    const AGENTS: u32 = 3;
    const CHUNKS: u64 = 4;

    let observed = obs.is_some();
    let cfg = DaemonConfig { heartbeat_timeout_ms: 60_000, obs, ..DaemonConfig::default() };
    let daemon =
        Daemon::start(cfg, (0..AGENTS).map(test_agent_config).collect(), Box::new(|_, _, _| {}))
            .expect("start daemon");

    // The verbose run must genuinely be observed while bytes are
    // compared: its scrape endpoint is live for the whole workload.
    assert_eq!(daemon.obs_addr().is_some(), observed, "scraper endpoint mirrors the obs config");

    for agent in 0..AGENTS {
        let mut conn = ControlConn::connect(daemon.addr()).expect("connect");
        conn.set_read_timeout(Duration::from_millis(10)).expect("timeout");
        conn.send(&ControlMessage::Register { agent, incarnation: 0, resume: false })
            .expect("register");
        wait_for(&mut conn, |m| matches!(m, ControlMessage::RegisterAck { .. }));
        for seq in 0..CHUNKS {
            conn.send(&ControlMessage::LogUpload { agent, seq, chunk: synthetic_chunk(agent, 64) })
                .expect("upload");
            wait_for(
                &mut conn,
                |m| matches!(m, ControlMessage::ChunkAck { next_seq, .. } if *next_seq == seq + 1),
            );
        }
        conn.send(&ControlMessage::Goodbye { agent, final_seq: CHUNKS }).expect("goodbye");
    }

    let (log, metrics, _order) =
        daemon.finish(SimTime::from_secs(60), 4, 1, Duration::from_millis(500));
    let ranges = metrics.agents.iter().map(|a| a.merged_ranges.clone()).collect();
    (log_bytes(&log, path), ranges)
}

/// The live control plane, driven twice with the identical workload:
/// once dark, once at `Trace` with the snapshot scraper live. Merged
/// measurement bytes and merge ranges must match exactly.
#[test]
fn daemon_merge_is_bit_identical_across_verbosity() {
    let _guard = obs_lock();
    let _reset = LevelReset;
    let dir = scratch_dir("daemon");

    set_level(Level::Off);
    let (dark_bytes, dark_ranges) = run_fixed_workload(None, &dir.join("dark.bin"));

    set_level(Level::Trace);
    let obs = ObsConfig {
        interval: Duration::from_millis(25),
        series_path: Some(dir.join("series.jsonl")),
        serve: true,
    };
    let (loud_bytes, loud_ranges) = run_fixed_workload(Some(obs), &dir.join("loud.bin"));

    assert_eq!(
        dark_bytes, loud_bytes,
        "merged MeasurementLog bytes must not depend on the observability level"
    );
    assert_eq!(dark_ranges, loud_ranges, "merge ranges must not depend on the observability level");
    assert_eq!(dark_ranges, vec![vec![(0, 3)]; 3], "every agent merges one contiguous range");

    // The verbose run really was observed: its time series exists and
    // carries the schema marker.
    let series = std::fs::read_to_string(dir.join("series.jsonl")).expect("series written");
    assert!(
        series.lines().next().is_some_and(|l| l.contains("\"schema\":\"obs-v1\"")),
        "scraper series must carry the obs-v1 schema: {series:.120}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// 3. Control-frame purity
// ---------------------------------------------------------------------------

/// Every control frame encodes to the same bytes at every verbosity:
/// the wire protocol has no observability side channel.
#[test]
fn control_frames_are_bit_identical_across_verbosity() {
    let _guard = obs_lock();
    let _reset = LevelReset;

    let samples: Vec<ControlMessage> = vec![
        ControlMessage::Register { agent: 3, incarnation: 2, resume: true },
        ControlMessage::RegisterAck { agent: 3, next_seq: 17, window: 8 },
        ControlMessage::Heartbeat {
            agent: 3,
            seq: 99,
            sent_micros: 1_234,
            rtt_micros: 250,
            flags: 0,
        },
        ControlMessage::LogUpload { agent: 3, seq: 17, chunk: synthetic_chunk(3, 16) },
        ControlMessage::ChunkAck { next_seq: 18, window: 8 },
        ControlMessage::Goodbye { agent: 3, final_seq: 18 },
    ];

    set_level(Level::Off);
    let dark: Vec<Vec<u8>> = samples.iter().map(|m| m.encode_frame()).collect();

    for level in [Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace] {
        set_level(level);
        let loud: Vec<Vec<u8>> = samples.iter().map(|m| m.encode_frame()).collect();
        assert_eq!(dark, loud, "control frames must be byte-identical at {level:?}");
    }
}
