//! Shape assertions: the qualitative claims of every paper figure, checked
//! on scaled-down runs.  These are the repository's "does the reproduction
//! reproduce?" tests — magnitudes shrink with `--scale`, shapes must not.

use edonkey_honeypots::analysis::{
    file_peer_counts, first_event_ms, hourly_counts, peer_growth, peer_series, peer_sets_by_file,
    popular_files, random_files, subset_curve, top_peer,
};
use edonkey_honeypots::experiments::{Measurement, Options};
use edonkey_honeypots::platform::{MeasurementLog, QueryKind};

fn distributed() -> MeasurementLog {
    Options { scale: 0.02, seed: 40, samples: 20, json: false, ..Default::default() }
        .run(Measurement::Distributed)
}

fn greedy() -> MeasurementLog {
    Options { scale: 0.03, seed: 41, samples: 20, json: false, ..Default::default() }
        .run(Measurement::Greedy)
}

#[test]
fn fig02_shape_linear_growth_without_saturation() {
    let log = distributed();
    let g = peer_growth(&log);
    let total = g.total() as f64;
    // Still discovering at the end (paper: >2,500/day after a month).
    assert!(g.tail_rate(5) > 0.01 * total, "discovery stalled: {:?}", g.new_per_day);
    // Roughly linear: the second half contributes a substantial share.
    let half = g.cumulative[15] as f64;
    assert!(half < 0.75 * total, "growth saturated early: half {half}, total {total}");
}

#[test]
fn fig04_shape_day_night_oscillation_and_fast_first_query() {
    let log = distributed();
    let hourly = hourly_counts(&log, QueryKind::Hello);
    assert!(
        hourly.day_night_ratio() > 2.0,
        "day/night oscillation missing: ratio {}",
        hourly.day_night_ratio()
    );
    let first = first_event_ms(&log, QueryKind::Hello).expect("some HELLO");
    assert!(
        first < 60 * 60 * 1_000,
        "first query must arrive within the first hour (paper: 10 min), got {first} ms"
    );
}

#[test]
fn fig08_09_shape_top_peer_dominates_and_prefers_random_content() {
    let log = distributed();
    let top = top_peer(&log, QueryKind::StartUpload).expect("some top peer");
    let series = peer_series(&log, top, QueryKind::StartUpload);
    let (rc, nc) = series.finals();
    // The robot sweeps both groups; pacing favours random content
    // (paper Fig. 8) — allow slack at small scale.
    assert!(rc + nc > 50, "top peer must be a heavy querier: {rc}+{nc}");
    assert!(
        rc as f64 > 0.8 * nc as f64,
        "random content must not pace behind silence: rc={rc}, nc={nc}"
    );
    let parts = peer_series(&log, top, QueryKind::RequestPart);
    let (rc_p, nc_p) = parts.finals();
    assert!(rc_p > nc_p, "REQUEST-PART pacing must favour random content: {rc_p} vs {nc_p}");
}

#[test]
fn fig11_12_shape_popular_files_dominate_random_files() {
    let log = greedy();
    let sets = peer_sets_by_file(&log);
    assert!(sets.len() > 50, "greedy run must surface many queried files: {}", sets.len());
    let k = 30.min(sets.len());
    let rnd = random_files(&sets, k, 9);
    let pop = popular_files(&sets, k);
    let rnd_curve = subset_curve(&rnd, 20, 1);
    let pop_curve = subset_curve(&pop, 20, 1);
    let rnd_final = rnd_curve.last().unwrap().avg;
    let pop_final = pop_curve.last().unwrap().avg;
    assert!(
        pop_final > 1.5 * rnd_final,
        "popular files must attract clearly more peers: {pop_final} vs {rnd_final}"
    );
    // Per-file interest is heavy-tailed: best ≫ worst (paper: 13,373 vs 2).
    let counts = file_peer_counts(&sets);
    let best = counts[0];
    let worst = *counts.last().unwrap();
    assert!(best >= 20 * worst.max(1), "per-file spread too flat: best {best}, worst {worst}");
    // Growth in the number of advertised files keeps paying off: the
    // random-files curve must not plateau.
    let mid = rnd_curve[k / 2].avg;
    assert!(rnd_final > 1.3 * mid, "file curve saturated: mid {mid}, final {rnd_final}");
}

#[test]
fn table1_shape_greedy_dwarfs_distributed_per_day() {
    // The greedy honeypot advertising thousands of files observes far more
    // peers per day than 24 honeypots advertising four files (Table I).
    let d = distributed();
    let g = greedy();
    let d_rate = f64::from(d.distinct_peers) / d.duration.as_days();
    let g_rate = f64::from(g.distinct_peers) / g.duration.as_days();
    // Scales differ (0.02 vs 0.03): normalise.  The greedy bootstrap is a
    // positive-feedback loop, so its advantage at a few percent scale is a
    // fraction of the full-scale ~8× (871k/15d vs 110k/32d); require a
    // clear win, not the full-scale factor.
    let d_rate = d_rate / 0.02;
    let g_rate = g_rate / 0.03;
    assert!(
        g_rate > 2.0 * d_rate,
        "greedy must dominate per-day discovery: {g_rate:.0} vs {d_rate:.0}"
    );
}
