//! End-to-end integration tests of the full pipeline: simulated eDonkey
//! world → honeypot platform → manager merge/anonymisation → analysis.

use edonkey_honeypots::analysis::{
    basic_stats, distinct_peers_by_strategy, peer_growth, peer_sets_by_honeypot, subset_curve,
};
use edonkey_honeypots::experiments::{Measurement, Options};
use edonkey_honeypots::platform::QueryKind;
use edonkey_honeypots::sim::{run_scenario, ScenarioConfig};

fn small_opts(seed: u64) -> Options {
    Options { scale: 0.02, seed, samples: 25, json: false, ..Default::default() }
}

#[test]
fn distributed_pipeline_end_to_end() {
    let log = small_opts(11).run(Measurement::Distributed);
    assert!(log.validate().is_empty(), "{:?}", log.validate());

    let stats = basic_stats(&log);
    assert_eq!(stats.honeypots, 24);
    assert_eq!(stats.shared_files, 4);
    assert!(stats.distinct_peers > 200, "too few peers: {}", stats.distinct_peers);
    assert!(stats.distinct_files > 50, "shared lists must surface files");
    assert!(stats.distinct_files_bytes > 0);

    // Growth must be roughly linear: every day discovers new peers.
    let growth = peer_growth(&log);
    assert_eq!(growth.cumulative.len(), 32);
    let active_days = growth.new_per_day.iter().filter(|&&n| n > 0).count();
    assert!(active_days >= 30, "peer discovery must continue: {active_days} active days");
}

#[test]
fn strategy_gap_matches_paper_ordering() {
    let log = small_opts(12).run(Measurement::Distributed);
    // Paper §IV-B: random content sees at least as many distinct peers and
    // strictly more REQUEST-PARTs.
    let hello = distinct_peers_by_strategy(&log, QueryKind::Hello);
    let (rc, nc) = hello.finals();
    assert!(
        rc as f64 >= nc as f64 * 0.95,
        "random-content HELLO peers must not lose clearly: rc={rc} nc={nc}"
    );
    let parts = edonkey_honeypots::analysis::messages_by_strategy(&log, QueryKind::RequestPart);
    let (rc_p, nc_p) = parts.finals();
    assert!(rc_p > nc_p, "random content must attract more part requests: {rc_p} vs {nc_p}");
}

#[test]
fn honeypot_subset_curve_shows_diminishing_returns() {
    let log = small_opts(13).run(Measurement::Distributed);
    let sets = peer_sets_by_honeypot(&log);
    assert_eq!(sets.len(), 24);
    let curve = subset_curve(&sets, 25, 99);
    // Monotone growth with diminishing marginal benefit between the first
    // and last steps (paper Fig. 10).
    for w in curve.windows(2) {
        assert!(w[1].avg >= w[0].avg, "union must be monotone");
    }
    let first_gain = curve[1].avg - curve[0].avg;
    let last_gain = curve[23].avg - curve[22].avg;
    assert!(
        last_gain < first_gain,
        "marginal honeypot benefit must shrink: first {first_gain}, last {last_gain}"
    );
    assert!(curve[23].avg > curve[0].avg * 2.0, "24 honeypots see much more than one");
    // Union of all honeypots equals the measurement's distinct peers.
    assert_eq!(curve[23].max, u64::from(log.distinct_peers));
}

#[test]
fn greedy_pipeline_adopts_and_freezes() {
    // The greedy bootstrap is a positive-feedback loop (adopted files
    // attract the peers that carry more files); below ~5 % scale the
    // feedback is too weak for the day-1 dip to be visible, so this test
    // runs a bit bigger than the others.
    let log = Options { scale: 0.05, ..small_opts(14) }.run(Measurement::Greedy);
    assert!(log.validate().is_empty());
    let stats = basic_stats(&log);
    assert!(stats.shared_files > 10, "greedy must adopt files on day 1: {}", stats.shared_files);
    // Day-1 initialisation: far fewer peers on day 0 than later (Fig. 3).
    let growth = peer_growth(&log);
    let day0 = growth.new_per_day[0] as f64;
    let later: f64 = growth.new_per_day[2..8].iter().sum::<u64>() as f64 / 6.0;
    assert!(day0 < later * 0.6, "day-1 dip expected: day0 {day0}, later average {later}");
}

#[test]
fn same_seed_same_measurement() {
    let a = run_scenario(ScenarioConfig::tiny(77));
    let b = run_scenario(ScenarioConfig::tiny(77));
    assert_eq!(a.log.records.len(), b.log.records.len());
    assert_eq!(a.log.distinct_peers, b.log.distinct_peers);
    assert_eq!(a.log.files.len(), b.log.files.len());
    for (x, y) in a.log.records.iter().zip(&b.log.records) {
        assert_eq!(x, y);
    }
}

#[test]
fn anonymisation_holds_across_pipeline() {
    let out = run_scenario(ScenarioConfig::tiny(31));
    let log = out.log;
    // Peer identifiers are dense small integers assigned in first-seen
    // order: the sequence of first occurrences must be exactly 0, 1, 2, …
    // within the merge order (records are honeypot-major, matching the
    // manager's collection order).
    let mut seen = std::collections::HashSet::new();
    let mut firsts = Vec::new();
    for r in &log.records {
        if seen.insert(r.peer.0) {
            firsts.push(r.peer.0);
        }
    }
    for l in &log.shared_lists {
        if seen.insert(l.peer.0) {
            firsts.push(l.peer.0);
        }
    }
    assert_eq!(seen.len() as u32, log.distinct_peers);
    // Every id below the count appears exactly once among firsts.
    let mut sorted = firsts.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..log.distinct_peers).collect::<Vec<_>>(), "ids must be dense");
    // File names passed word anonymisation: the rare per-file rank tokens
    // (five-digit numbers in generated names) must be gone or replaced.
    assert!(!log.files.is_empty());
}
