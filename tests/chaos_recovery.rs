//! Chaos acceptance tests of the crash-safe pipeline (PR 4): a seeded
//! kill/restart schedule takes down agents *and* the manager — mid-upload,
//! mid-checkpoint, mid-relaunch — and the recovered measurement must be
//! bit-identical to the in-process reference (journal replay in daemon
//! merge order), with no chunk ever merged twice.

use std::time::Duration;

use edonkey_honeypots::control::checkpoint::{self, SlotCheckpoint};
use edonkey_honeypots::control::{
    AgentConfig, CheckpointOptions, ConnEvent, ControlConn, ControlMessage, Daemon, DaemonConfig,
    FaultPlan, LoopbackDeployment, LoopbackOptions, LoopbackSpec, ManagerCheckpoint,
};
use edonkey_honeypots::platform::log::{FileTable, SharedLists};
use edonkey_honeypots::platform::{
    AdvertisedFile, ContentStrategy, FileStrategy, HoneypotId, LogChunk, ServerInfo,
};
use edonkey_honeypots::proto::{FileId, Ipv4};
use netsim::SimTime;

fn fixed_spec(tag: &[u8], fault: FaultPlan) -> LoopbackSpec {
    let file = FileId::from_seed(tag);
    LoopbackSpec {
        content: ContentStrategy::NoContent,
        files: FileStrategy::Fixed(vec![AdvertisedFile::new(
            file,
            format!("{} file.avi", String::from_utf8_lossy(tag)),
            50_000_000,
        )]),
        fault,
        impair: None,
        spool_faults: None,
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("edhp-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The headline chaos schedule: three agents — one clean, one killed
/// right *after* sending its first upload (the daemon has it; the agent
/// never saw the ack), one killed right *before* sending (the chunk
/// exists only in its spool) — plus a manager crash after a checkpoint
/// landed, with a torn snapshot temp file planted to simulate dying
/// mid-checkpoint write.  Recovery must relaunch everything against the
/// new daemon, replay the spooled chunk, dedupe anything re-sent across
/// the crash boundary, and produce a measurement bit-identical to the
/// in-process pipeline fed the same chunks in the same order.
#[test]
fn chaos_schedule_recovers_bit_identical() {
    let root = scratch_dir("full");
    let ckpt_dir = root.join("ckpt");
    let spool_dir = root.join("spool");

    let specs = vec![
        fixed_spec(b"alpha", FaultPlan::default()),
        fixed_spec(b"bravo", FaultPlan { kill_after_chunk: Some(0), ..FaultPlan::default() }),
        fixed_spec(b"charlie", FaultPlan { kill_before_chunk: Some(0), ..FaultPlan::default() }),
    ];
    let opts = LoopbackOptions {
        daemon: DaemonConfig {
            checkpoint: Some(CheckpointOptions::new(&ckpt_dir)),
            ..DaemonConfig::default()
        },
        spool_dir: Some(spool_dir),
        ..LoopbackOptions::default()
    };
    let mut deployment = LoopbackDeployment::start(specs, opts).expect("start deployment");
    assert!(deployment.wait_ready(Duration::from_secs(10)), "agents never became ready");

    // Round 1: traffic against every honeypot.  Bravo dies right after
    // shipping chunk 0 (merged, unacked on its side); charlie dies right
    // before shipping it (spool only).  Charlie's chunk 0 can therefore
    // reach the daemon *only* through the spool replay of its relaunched
    // incarnation — the tentpole's durability claim in one assertion.
    for agent in 0..3u32 {
        let file = FileId::from_seed([b"alpha" as &[u8], b"bravo", b"charlie"][agent as usize]);
        assert!(
            deployment.drive_download(&format!("round1-peer-{agent}"), agent, file, 1, &[]),
            "agent {agent} honeypot did not answer"
        );
    }
    assert!(
        deployment.wait_chunks(3, Duration::from_secs(20)),
        "round-1 chunks never merged (got {}; charlie's must arrive via spool replay)",
        deployment.daemon().chunks_collected()
    );

    // Both killed agents must have been declared dead and relaunched.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while deployment.daemon().relaunch_count() < 2 {
        assert!(std::time::Instant::now() < deadline, "killed agents were never relaunched");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(deployment.wait_ready(Duration::from_secs(10)), "relaunched agents never came back");

    // Let at least one periodic snapshot land (interval is 100 ms), then
    // simulate a crash *mid-checkpoint write*: a torn temp file with
    // absurd contents appears next to the good snapshot.  Recovery must
    // ignore it — only the atomically renamed `manager.ckpt` counts.
    std::thread::sleep(Duration::from_millis(300));
    let doctored = ManagerCheckpoint {
        slots: vec![SlotCheckpoint { expected_seq: 999, ..SlotCheckpoint::default() }; 3],
    };
    checkpoint::write_torn_tmp(&ckpt_dir, &doctored, 20).expect("plant torn tmp");

    // The manager crash: in-memory merge state, metrics and connections
    // all gone.  Recovery rebuilds the core from the chunk WAL (merge
    // order preserved), overlays supervision counters from the snapshot,
    // and relaunches the agents against the new address.
    let merged_before_crash = deployment.daemon().chunks_collected();
    deployment.crash_daemon();
    deployment.recover_daemon().expect("recover daemon");

    // Old agent threads burn through their reconnect budget (~4 s) and
    // give up; relaunched incarnations steal the spool locks after a 2 s
    // wait.  Generous timeout: this is the slowest path in the suite.
    assert!(
        deployment.wait_ready(Duration::from_secs(30)),
        "agents never re-registered with the recovered daemon"
    );
    assert_eq!(
        deployment.daemon().chunks_collected(),
        merged_before_crash,
        "WAL replay must restore exactly the pre-crash merges"
    );

    // Round 2: the recovered platform keeps measuring.
    for agent in 0..3u32 {
        let file = FileId::from_seed([b"alpha" as &[u8], b"bravo", b"charlie"][agent as usize]);
        assert!(
            deployment.drive_download(&format!("round2-peer-{agent}"), agent, file, 1, &[]),
            "agent {agent} honeypot did not answer after manager recovery"
        );
    }
    assert!(
        deployment.wait_chunks(6, Duration::from_secs(20)),
        "round-2 chunks never merged after recovery (got {})",
        deployment.daemon().chunks_collected()
    );

    let outcome = deployment.finish(SimTime::from_secs(60), 4, 1, Duration::from_secs(5));

    // The measurement: both rounds present, all three honeypots.
    assert!(!outcome.log.records.is_empty(), "recovered measurement must carry records");
    assert_eq!(outcome.log.honeypots.len(), 3);
    assert!(outcome.log.records.len() >= 6, "expected hellos from both rounds");

    // Bit-identical recovery: replaying the pre-transport journal through
    // a fresh in-process manager in (recovered) daemon merge order
    // reproduces the live log exactly — nothing lost to either crash,
    // nothing duplicated, order preserved across the WAL replay.
    assert_eq!(outcome.replay_divergence(), None);

    // Exactly-once accounting: per-agent merged sequence ranges must
    // agree with the merge counters — no chunk merged twice.
    assert_eq!(outcome.metrics.double_merge_violation(), None);
    assert_eq!(outcome.metrics.manager_restores, 1, "exactly one manager recovery");

    // The fault schedule shows up in the supervision counters, and the
    // snapshot carries them across the restart: both scripted kills are
    // still there (post-crash launches start from `Pending` and are not
    // relaunch incidents).
    assert!(outcome.metrics.agents[1].deaths >= 1);
    assert!(outcome.metrics.agents[2].deaths >= 1);
    assert!(outcome.metrics.agents[1].relaunches >= 1, "bravo's kill survives the restart");
    assert!(outcome.metrics.agents[2].relaunches >= 1, "charlie's kill survives the restart");

    // Exit census: the two scripted kills, the three pre-crash threads
    // that exhausted their reconnect budget against the dead address, and
    // a clean shutdown for every final incarnation.
    use edonkey_honeypots::control::AgentExit;
    let killed = outcome.exits.iter().filter(|e| matches!(e, AgentExit::Killed)).count();
    let gave_up = outcome.exits.iter().filter(|e| matches!(e, AgentExit::GaveUp)).count();
    let shutdown = outcome.exits.iter().filter(|e| matches!(e, AgentExit::Shutdown)).count();
    assert_eq!(killed, 2, "exactly the two scripted kills");
    assert!(gave_up >= 3, "pre-crash threads must give up on the dead address");
    assert!(shutdown >= 3, "every final incarnation must shut down cleanly");

    let _ = std::fs::remove_dir_all(&root);
}

/// The snapshot is an optimisation, not a correctness dependency: delete
/// it outright after the crash and recovery must still reproduce the
/// measurement from the chunk WAL alone (supervision counters reset, the
/// data does not).
#[test]
fn recovery_from_wal_alone_when_snapshot_is_missing() {
    let root = scratch_dir("wal-only");
    let ckpt_dir = root.join("ckpt");

    let specs = vec![fixed_spec(b"solo", FaultPlan::default())];
    let opts = LoopbackOptions {
        daemon: DaemonConfig {
            checkpoint: Some(CheckpointOptions::new(&ckpt_dir)),
            ..DaemonConfig::default()
        },
        spool_dir: Some(root.join("spool")),
        ..LoopbackOptions::default()
    };
    let mut deployment = LoopbackDeployment::start(specs, opts).expect("start deployment");
    assert!(deployment.wait_ready(Duration::from_secs(10)));

    assert!(deployment.drive_download("wal-peer-1", 0, FileId::from_seed(b"solo"), 1, &[]));
    assert!(deployment.wait_chunks(1, Duration::from_secs(10)));

    let merged_before_crash = deployment.daemon().chunks_collected();
    deployment.crash_daemon();
    let state = ckpt_dir.join(checkpoint::STATE_FILE);
    if state.exists() {
        std::fs::remove_file(&state).expect("drop snapshot");
    }
    deployment.recover_daemon().expect("recover daemon");
    assert!(deployment.wait_ready(Duration::from_secs(30)));
    assert_eq!(
        deployment.daemon().chunks_collected(),
        merged_before_crash,
        "WAL alone must restore the merges"
    );

    assert!(deployment.drive_download("wal-peer-2", 0, FileId::from_seed(b"solo"), 1, &[]));
    assert!(deployment.wait_chunks(2, Duration::from_secs(20)));

    let outcome = deployment.finish(SimTime::from_secs(60), 4, 1, Duration::from_secs(5));
    assert_eq!(outcome.replay_divergence(), None);
    assert_eq!(outcome.metrics.double_merge_violation(), None);
    assert_eq!(outcome.metrics.manager_restores, 1);

    let _ = std::fs::remove_dir_all(&root);
}

/// Exactly-once at the merge boundary, observed directly: a raw control
/// connection impersonating an agent uploads the same sequence twice.
/// The daemon must re-acknowledge (so a retrying agent makes progress)
/// without re-merging (so the measurement never double-counts), and the
/// sequence-range ledger must record one merge for seq 0.
#[test]
fn duplicate_uploads_are_reacked_never_remerged() {
    let config = AgentConfig {
        id: HoneypotId(0),
        content: ContentStrategy::NoContent,
        files: FileStrategy::Fixed(Vec::new()),
        server: ServerInfo::new("dup-test", Ipv4::new(127, 0, 0, 1), 4661),
        ip_salt: 7,
        rng_seed: 7,
        heartbeat_ms: 50,
        collect_ms: 60,
        client_name: "dup-agent".into(),
    };
    // No-op launcher: this test *is* the agent.
    let daemon = Daemon::start(
        DaemonConfig { heartbeat_timeout_ms: 60_000, ..DaemonConfig::default() },
        vec![config.clone()],
        Box::new(|_, _, _| {}),
    )
    .expect("start daemon");

    let mut conn = ControlConn::connect(daemon.addr()).expect("connect");
    conn.set_read_timeout(Duration::from_millis(10)).expect("timeout");
    conn.send(&ControlMessage::Register { agent: 0, incarnation: 0, resume: false })
        .expect("register");
    wait_for(&mut conn, |m| matches!(m, ControlMessage::RegisterAck { next_seq: 0, .. }));

    let chunk = LogChunk {
        honeypot: HoneypotId(0),
        server: config.server.clone(),
        records: Vec::new(),
        shared_lists: SharedLists::new(),
        peer_names: Vec::new(),
        files: FileTable::new(),
    };
    let upload = ControlMessage::LogUpload { agent: 0, seq: 0, chunk };
    conn.send(&upload).expect("first upload");
    wait_for(&mut conn, |m| matches!(m, ControlMessage::ChunkAck { next_seq: 1, .. }));
    // The retry case: the ack was lost on the agent's side, so the exact
    // same frame arrives again.  The cumulative frontier is unchanged —
    // the daemon re-acknowledges `next_seq: 1` without re-merging.
    conn.send(&upload).expect("second upload");
    wait_for(&mut conn, |m| matches!(m, ControlMessage::ChunkAck { next_seq: 1, .. }));

    let metrics = daemon.metrics();
    assert_eq!(metrics.agents[0].duplicate_chunks, 1, "the re-send must be counted");
    assert_eq!(metrics.agents[0].merged_ranges, vec![(0, 0)], "one merge of seq 0");
    assert_eq!(metrics.double_merge_violation(), None);

    conn.send(&ControlMessage::Goodbye { agent: 0, final_seq: 1 }).expect("goodbye");
    let (_log, metrics, order) =
        daemon.finish(SimTime::from_secs(60), 4, 1, Duration::from_millis(500));
    assert_eq!(order, vec![(0, 0)], "merge order records seq 0 exactly once");
    assert_eq!(metrics.agents[0].chunks_merged, 1);
}

/// The windowed-upload chaos case (PR 6): an agent with a durable spool
/// dies mid-window — some chunks acknowledged (and trimmed from its
/// spool), the last one sent but never acknowledged.  The relaunched
/// incarnation registers with `resume`, learns the cumulative ack
/// frontier from its `RegisterAck`, trims everything the daemon already
/// merged, and continues from there.  The recovered measurement must be
/// bit-identical and no sequence may merge twice.
#[test]
fn partially_acked_window_survives_agent_crash() {
    let root = scratch_dir("window");

    // Die right after *sending* seq 2: by then seqs 0 and 1 have been
    // acknowledged cumulatively and trimmed, seq 2 is in flight — a
    // partially-acked window at the moment of death.
    let specs = vec![fixed_spec(
        b"window",
        FaultPlan { kill_after_chunk: Some(2), ..FaultPlan::default() },
    )];
    let opts =
        LoopbackOptions { spool_dir: Some(root.join("spool")), ..LoopbackOptions::default() };
    let deployment = LoopbackDeployment::start(specs, opts).expect("start deployment");
    assert!(deployment.wait_ready(Duration::from_secs(10)), "agent never became ready");

    // Drive traffic until three chunks have merged.  Individual download
    // attempts may land in the agent's death window and fail — that is
    // the point of the schedule — so only the merge counter gates.
    let file = FileId::from_seed(b"window");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut round = 0u32;
    while deployment.daemon().chunks_collected() < 3 {
        assert!(std::time::Instant::now() < deadline, "three chunks never merged");
        let _ = deployment.drive_download(&format!("win-peer-{round}"), 0, file, 1, &[]);
        round += 1;
        std::thread::sleep(Duration::from_millis(80));
    }

    // Supervision must declare the death and relaunch; the relaunched
    // incarnation resumes from the frontier in its `RegisterAck`.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while deployment.daemon().relaunch_count() < 1 {
        assert!(std::time::Instant::now() < deadline, "killed agent was never relaunched");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(deployment.wait_ready(Duration::from_secs(10)), "relaunch never came back");

    // The resumed incarnation keeps measuring past the crash.
    let merged = deployment.daemon().chunks_collected();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while deployment.daemon().chunks_collected() <= merged {
        assert!(std::time::Instant::now() < deadline, "no chunk merged after the relaunch");
        let _ = deployment.drive_download(&format!("win-post-{round}"), 0, file, 1, &[]);
        round += 1;
        std::thread::sleep(Duration::from_millis(80));
    }

    let outcome = deployment.finish(SimTime::from_secs(60), 4, 1, Duration::from_secs(5));

    // Bit-identical recovery and exactly-once merging across the
    // partially-acked window.
    assert_eq!(outcome.replay_divergence(), None, "recovered log must replay bit-identical");
    assert_eq!(outcome.metrics.double_merge_violation(), None);
    assert!(outcome.metrics.agents[0].deaths >= 1, "the scripted kill must be observed");

    // The merged-sequence ledger must be one contiguous range from 0:
    // nothing lost at the crash boundary, nothing merged twice.
    let ranges = &outcome.metrics.agents[0].merged_ranges;
    assert_eq!(ranges.len(), 1, "merges must form one contiguous range, got {ranges:?}");
    assert_eq!(ranges[0].0, 0, "merges must start at seq 0, got {ranges:?}");

    let _ = std::fs::remove_dir_all(&root);
}

/// Polls `conn` until a message matching `pred` arrives (5 s budget).
fn wait_for(conn: &mut ControlConn, pred: impl Fn(&ControlMessage) -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        for ev in conn.poll_until(deadline).expect("poll") {
            if let ConnEvent::Msg(m) = ev {
                if pred(&m) {
                    return;
                }
            }
        }
        assert!(std::time::Instant::now() < deadline, "expected control message never arrived");
    }
}
