//! Integration tests of the real-TCP substrate: server, honeypot host and
//! scripted peers exchanging genuine eDonkey frames over loopback.

use std::time::Duration;

use edonkey_honeypots::net::{HoneypotHost, NetServer, ScriptedPeer};
use edonkey_honeypots::platform::{
    AdvertisedFile, ContentStrategy, FileStrategy, Honeypot, HoneypotConfig, HoneypotId, IpHasher,
    QueryKind, ServerInfo,
};
use edonkey_honeypots::proto::{FileId, Ipv4};
use netsim::{Rng, SimTime};

fn start_honeypot(server: &NetServer, content: ContentStrategy, materialize: bool) -> HoneypotHost {
    let file = FileId::from_seed(b"test-file");
    let mut config = HoneypotConfig::fixed(
        HoneypotId(0),
        content,
        vec![AdvertisedFile::new(file, "test file.avi", 100_000_000)],
    );
    config.materialize_content = materialize;
    let hp = Honeypot::new(
        config,
        ServerInfo::new("loopback", Ipv4::new(127, 0, 0, 1), server.addr().port()),
        IpHasher::from_seed(1),
        Rng::seed_from(2),
    );
    let host = HoneypotHost::start(hp, server.addr()).expect("start host");
    assert!(host.wait_connected(Duration::from_secs(5)), "honeypot login timed out");
    host
}

#[test]
fn peer_discovers_honeypot_through_server() {
    let server = NetServer::start().unwrap();
    let host = start_honeypot(&server, ContentStrategy::NoContent, false);
    let file = FileId::from_seed(b"test-file");

    let mut peer = ScriptedPeer::login(server.addr(), "discoverer").unwrap();
    let sources = peer.get_sources(file).unwrap();
    assert_eq!(sources.len(), 1, "the honeypot must be indexed as provider");
    assert_eq!(sources[0].port, host.peer_addr().port());

    host.stop();
    server.stop();
}

#[test]
fn random_content_honeypot_sends_bytes_no_content_stays_silent() {
    let server = NetServer::start().unwrap();
    let file = FileId::from_seed(b"test-file");

    // Random content with materialised bytes.
    let host_rc = start_honeypot(&server, ContentStrategy::RandomContent, true);
    let mut peer = ScriptedPeer::login(server.addr(), "downloader").unwrap();
    let rc = peer
        .attempt_download(host_rc.peer_addr(), file, 2, Duration::from_millis(400), &[])
        .unwrap();
    assert!(rc.hello_answered && rc.upload_accepted);
    assert_eq!(rc.answered_requests, 2);
    assert_eq!(rc.timed_out_requests, 0);
    assert!(rc.bytes_received > 0, "random-content honeypot must send bytes");
    let chunk = host_rc.stop();
    assert_eq!(chunk.records.iter().filter(|r| r.kind == QueryKind::RequestPart).count(), 2);

    // No content: same flow, requests time out.
    let host_nc = start_honeypot(&server, ContentStrategy::NoContent, false);
    let nc = peer
        .attempt_download(host_nc.peer_addr(), file, 2, Duration::from_millis(300), &[])
        .unwrap();
    assert!(nc.hello_answered && nc.upload_accepted);
    assert_eq!(nc.answered_requests, 0, "no-content honeypot must stay silent");
    assert_eq!(nc.timed_out_requests, 2);
    assert_eq!(nc.bytes_received, 0);
    let chunk = host_nc.stop();
    assert_eq!(
        chunk.records.iter().filter(|r| r.kind == QueryKind::RequestPart).count(),
        2,
        "silent honeypots still log the requests"
    );
    server.stop();
}

#[test]
fn honeypot_logs_carry_peer_metadata_and_hashed_ips() {
    let server = NetServer::start().unwrap();
    let host = start_honeypot(&server, ContentStrategy::NoContent, false);
    let file = FileId::from_seed(b"test-file");

    let mut peer = ScriptedPeer::login(server.addr(), "metadata-peer").unwrap();
    let _ =
        peer.attempt_download(host.peer_addr(), file, 1, Duration::from_millis(200), &[]).unwrap();

    let chunk = host.stop();
    let hello: Vec<_> = chunk.records.iter().filter(|r| r.kind == QueryKind::Hello).collect();
    assert_eq!(hello.len(), 1);
    let rec = hello[0];
    assert_eq!(chunk.peer_names[rec.name as usize], "metadata-peer");
    assert_eq!(rec.version, 0x49);
    // Step-1 anonymisation: the hash of 127.0.0.1 under the measurement
    // salt, never the raw address.
    let expected = IpHasher::from_seed(1).hash(Ipv4::new(127, 0, 0, 1));
    assert_eq!(rec.peer, expected);
    server.stop();
}

#[test]
fn greedy_honeypot_adopts_files_over_tcp() {
    let server = NetServer::start().unwrap();
    let seed_file = FileId::from_seed(b"seed");
    let config = HoneypotConfig {
        id: HoneypotId(0),
        content: ContentStrategy::NoContent,
        files: FileStrategy::Greedy {
            seeds: vec![AdvertisedFile::new(seed_file, "seed.mp3", 5_000_000)],
            // Wall-clock log time starts at 0 when the host starts, so one
            // simulated "day" comfortably covers the test.
            adopt_until: SimTime::from_days(1),
            max_files: 100,
        },
        ask_shared_files: true,
        materialize_content: false,
        port: 4662,
        client_name: "greedy-hp".into(),
    };
    let hp = Honeypot::new(
        config,
        ServerInfo::new("loopback", Ipv4::new(127, 0, 0, 1), server.addr().port()),
        IpHasher::from_seed(1),
        Rng::seed_from(3),
    );
    let host = HoneypotHost::start(hp, server.addr()).expect("start host");
    assert!(host.wait_connected(Duration::from_secs(5)));

    let mut peer = ScriptedPeer::login(server.addr(), "sharer").unwrap();
    let shared = [
        (FileId::from_seed(b"s1"), "my first file.avi", 700_000_000u64),
        (FileId::from_seed(b"s2"), "my second file.mp3", 5_000_000u64),
    ];
    let attempt = peer
        .attempt_download(host.peer_addr(), seed_file, 1, Duration::from_millis(300), &shared)
        .unwrap();
    assert!(attempt.was_asked_shared_files, "greedy honeypot must ask for the list");

    // The adopted files must propagate to the server index (OFFER-FILES
    // over the server socket); poll for the async round trip.
    let mut indexed = 0;
    for _ in 0..100 {
        indexed = server.indexed_files();
        if indexed >= 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(indexed >= 3, "adopted files must be re-advertised (got {indexed})");

    let chunk = host.stop();
    assert_eq!(chunk.shared_lists.len(), 1);
    assert_eq!(chunk.shared_lists.get(0).files.len(), 2);
    assert!(chunk.files.len() >= 3, "seed + 2 adopted files in the file table");
    server.stop();
}

#[test]
fn greedy_loopback_run_flows_through_merge_pipeline() {
    use edonkey_honeypots::platform::{HoneypotSpec, Manager};

    let server = NetServer::start().unwrap();
    let server_info = ServerInfo::new("loopback", Ipv4::new(127, 0, 0, 1), server.addr().port());
    let seed_file = FileId::from_seed(b"greedy-seed");
    let config = HoneypotConfig {
        id: HoneypotId(0),
        content: ContentStrategy::NoContent,
        files: FileStrategy::Greedy {
            seeds: vec![AdvertisedFile::new(seed_file, "seed.mp3", 5_000_000)],
            adopt_until: SimTime::from_days(1),
            max_files: 100,
        },
        ask_shared_files: true,
        materialize_content: false,
        port: 4662,
        client_name: "greedy-pipeline-hp".into(),
    };
    let hp = Honeypot::new(config, server_info.clone(), IpHasher::from_seed(1), Rng::seed_from(4));
    let host = HoneypotHost::start(hp, server.addr()).expect("start host");
    assert!(host.wait_connected(Duration::from_secs(5)));

    let mut peer = ScriptedPeer::login(server.addr(), "pipeline-sharer").unwrap();
    let shared = [
        (FileId::from_seed(b"adopt-1"), "adopted first.avi", 700_000_000u64),
        (FileId::from_seed(b"adopt-2"), "adopted second.mp3", 5_000_000u64),
    ];
    let attempt = peer
        .attempt_download(host.peer_addr(), seed_file, 1, Duration::from_millis(300), &shared)
        .unwrap();
    assert!(attempt.was_asked_shared_files);

    // The full collection path: the TCP-collected chunk goes through the
    // manager's merge/anonymise pipeline into a MeasurementLog, exactly
    // like a simulated or live-platform run.
    let chunk = host.stop();
    let mut manager = Manager::new(vec![HoneypotSpec {
        id: HoneypotId(0),
        content: ContentStrategy::NoContent,
        server: server_info,
    }]);
    manager.collect(chunk);
    let log = manager.finalize(SimTime::from_secs(60), 3, 1);

    assert!(!log.records.is_empty(), "the greedy run must produce anonymised records");
    assert_eq!(log.shared_lists.len(), 1, "the shared list must survive the merge");
    assert_eq!(log.shared_lists[0].files.len(), 2);
    assert!(log.files.len() >= 3, "seed + adopted files in the unified table");
    assert!(log.distinct_peers >= 1);
    server.stop();
}

#[test]
fn keyword_search_over_tcp_finds_honeypot_files() {
    let server = NetServer::start().unwrap();
    let host = start_honeypot(&server, ContentStrategy::NoContent, false);
    let mut peer = ScriptedPeer::login(server.addr(), "searcher").unwrap();
    // The honeypot advertises "test file.avi".
    let hits = peer.search(edonkey_honeypots::proto::SearchExpr::keyword("test")).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].name(), Some("test file.avi"));
    let none = peer.search(edonkey_honeypots::proto::SearchExpr::keyword("nonexistent")).unwrap();
    assert!(none.is_empty());
    // Boolean query: keyword AND size constraint.
    let expr = edonkey_honeypots::proto::SearchExpr::keyword("file").and(
        edonkey_honeypots::proto::SearchExpr::NumericTag {
            name: "size".into(),
            comparator: edonkey_honeypots::proto::Comparator::Greater,
            value: 1_000,
        },
    );
    assert_eq!(peer.search(expr).unwrap().len(), 1);
    host.stop();
    server.stop();
}

#[test]
fn two_peers_are_distinct_in_the_log_by_user_hash() {
    let server = NetServer::start().unwrap();
    let host = start_honeypot(&server, ContentStrategy::NoContent, false);
    let file = FileId::from_seed(b"test-file");
    for name in ["peer-a", "peer-b"] {
        let mut peer = ScriptedPeer::login(server.addr(), name).unwrap();
        let _ = peer
            .attempt_download(host.peer_addr(), file, 1, Duration::from_millis(150), &[])
            .unwrap();
    }
    let chunk = host.stop();
    let users: std::collections::HashSet<_> =
        chunk.records.iter().filter(|r| r.kind == QueryKind::Hello).map(|r| r.user_id).collect();
    assert_eq!(users.len(), 2, "both peers logged with distinct user hashes");
    // Same source IP (loopback) ⇒ same hashed peer identity: the paper
    // counts peers by address, and both connections came from 127.0.0.1.
    let ips: std::collections::HashSet<_> =
        chunk.records.iter().filter(|r| r.kind == QueryKind::Hello).map(|r| r.peer).collect();
    assert_eq!(ips.len(), 1);
    server.stop();
}
