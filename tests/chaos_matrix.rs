//! Adversarial chaos matrix (PR 9): deterministic link impairment,
//! hostile peers and failing disks — composed, not one at a time.  Every
//! cell ends with the same two invariants the crash-safety suite pins:
//! the recovered measurement replays bit-identical from the pre-transport
//! journal, and no chunk is ever merged twice.  On top of that, every
//! degradation the platform absorbed must be *visible* in
//! [`PlatformMetrics`] — silent survival is indistinguishable from a test
//! that exercised nothing.

use std::io::Write as _;
use std::time::Duration;

use edonkey_honeypots::control::{
    AgentConfig, CheckpointOptions, ConnEvent, ControlConn, ControlMessage, Daemon, DaemonConfig,
    DiskFaultKind, DiskFaults, FaultPlan, FlightDumpOnPanic, ImpairPlan, ImpairedLink,
    LoopbackDeployment, LoopbackOptions, LoopbackSpec, Partition,
};
use edonkey_honeypots::platform::log::{FileTable, SharedLists};
use edonkey_honeypots::platform::{
    AdvertisedFile, ContentStrategy, FileStrategy, HoneypotId, LogChunk, ServerInfo,
};
use edonkey_honeypots::proto::{FileId, Ipv4};
use netsim::SimTime;

fn fixed_spec(tag: &[u8], fault: FaultPlan) -> LoopbackSpec {
    let file = FileId::from_seed(tag);
    LoopbackSpec {
        content: ContentStrategy::NoContent,
        files: FileStrategy::Fixed(vec![AdvertisedFile::new(
            file,
            format!("{} file.avi", String::from_utf8_lossy(tag)),
            50_000_000,
        )]),
        fault,
        impair: None,
        spool_faults: None,
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("edhp-matrix-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Arms the PR 10 flight recorder for one chaos cell: events are
/// captured verbosely into the in-memory rings and dumped to
/// `target/obs/<cell>.events.jsonl` only if the cell panics, so a
/// failing matrix run leaves its last ~4k events behind as evidence.
fn observe(cell: &'static str) -> FlightDumpOnPanic {
    netsim::obs::set_level(netsim::obs::Level::Debug);
    FlightDumpOnPanic::arm(cell)
}

/// Lossy + duplicating + reordering links, a spool on a full disk, and a
/// scripted agent kill — all in one deployment.  The damaged link slows
/// the control plane down without corrupting it (TCP below, CRC-checked
/// frames above); the full disk pushes one agent into in-memory degraded
/// mode (visible through its heartbeat flag); the kill exercises
/// relaunch + resume under both.
#[test]
fn impaired_links_full_disk_and_kills_recover_bit_identical() {
    let _obs = observe("impair");
    let root = scratch_dir("impair");

    let spool_faults = DiskFaults::none();
    spool_faults.inject(DiskFaultKind::Enospc, None); // every append fails

    let mut specs = vec![
        fixed_spec(b"alpha", FaultPlan::default()),
        fixed_spec(b"bravo", FaultPlan::default()),
        fixed_spec(b"charlie", FaultPlan { kill_after_chunk: Some(0), ..FaultPlan::default() }),
    ];
    specs[0].impair = Some(ImpairPlan {
        drop_permille: 40,
        dup_permille: 20,
        reorder_permille: 80,
        delay_ms: 2,
        jitter_ms: 3,
        ..ImpairPlan::clean(0xBAD11)
    });
    specs[1].spool_faults = Some(spool_faults);

    let opts = LoopbackOptions {
        daemon: DaemonConfig {
            checkpoint: Some(CheckpointOptions::new(root.join("ckpt"))),
            // The impaired link adds retry latency; keep supervision slack
            // enough not to misread it as a death, but tight enough that
            // charlie's scripted kill is declared within the test budget.
            heartbeat_timeout_ms: 2_000,
            ..DaemonConfig::default()
        },
        spool_dir: Some(root.join("spool")),
        ..LoopbackOptions::default()
    };
    let deployment = LoopbackDeployment::start(specs, opts).expect("start deployment");
    assert!(deployment.wait_ready(Duration::from_secs(15)), "agents never became ready");

    // Two rounds of traffic; drive until six chunks merged.  Individual
    // downloads may land in charlie's death window — only merges gate.
    let tags: [&[u8]; 3] = [b"alpha", b"bravo", b"charlie"];
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let mut round = 0u32;
    while deployment.daemon().chunks_collected() < 6 {
        assert!(
            std::time::Instant::now() < deadline,
            "six chunks never merged (got {})",
            deployment.daemon().chunks_collected()
        );
        for agent in 0..3u32 {
            let file = FileId::from_seed(tags[agent as usize]);
            let _ =
                deployment.drive_download(&format!("mx-peer-{agent}-{round}"), agent, file, 1, &[]);
        }
        round += 1;
        std::thread::sleep(Duration::from_millis(100));
    }

    // The kill must be declared and the agent relaunched before the books
    // close, or the death never reaches the supervision counters.
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    while deployment.daemon().relaunch_count() < 1 {
        assert!(std::time::Instant::now() < deadline, "killed agent was never relaunched");
        std::thread::sleep(Duration::from_millis(25));
    }

    let outcome = deployment.finish(SimTime::from_secs(60), 4, 1, Duration::from_secs(10));

    // The two headline invariants, under loss + reordering + ENOSPC + a
    // kill at once.
    assert_eq!(outcome.replay_divergence(), None, "recovered log must replay bit-identical");
    assert_eq!(outcome.metrics.double_merge_violation(), None);

    // Every absorbed failure is visible: bravo's dead disk surfaced
    // through the degraded-heartbeat flag, charlie's kill through the
    // supervision counters.
    assert!(
        outcome.metrics.agents[1].degraded_heartbeats > 0,
        "the full disk must surface as degraded heartbeats (heartbeats={}, merged={})",
        outcome.metrics.agents[1].heartbeats,
        outcome.metrics.agents[1].chunks_merged
    );
    assert!(outcome.metrics.agents[2].deaths >= 1, "the scripted kill must be observed");

    let _ = std::fs::remove_dir_all(&root);
}

/// A network partition opens 400 ms into each connection and heals 600 ms
/// later.  The link stalls — heartbeats, uploads and acks all freeze —
/// but TCP and the control plane ride it out; the measurement keeps
/// growing once the partition heals, and nothing is lost or doubled.
#[test]
fn partition_heals_and_the_measurement_survives() {
    let _obs = observe("partition");
    let root = scratch_dir("partition");

    let mut specs = vec![fixed_spec(b"island", FaultPlan::default())];
    specs[0].impair = Some(ImpairPlan {
        delay_ms: 1,
        partitions: vec![Partition { start_ms: 400, end_ms: 1_000 }],
        ..ImpairPlan::clean(0xBAD22)
    });

    let opts = LoopbackOptions {
        daemon: DaemonConfig {
            // The partition stalls heartbeats for 600 ms; supervision must
            // not misdeclare a death over it.
            heartbeat_timeout_ms: 5_000,
            ..DaemonConfig::default()
        },
        spool_dir: Some(root.join("spool")),
        ..LoopbackOptions::default()
    };
    let deployment = LoopbackDeployment::start(specs, opts).expect("start deployment");
    assert!(deployment.wait_ready(Duration::from_secs(15)), "agent never became ready");

    let file = FileId::from_seed(b"island");
    let deadline = std::time::Instant::now() + Duration::from_secs(45);
    let mut round = 0u32;
    while deployment.daemon().chunks_collected() < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "chunks never merged across the partition (got {})",
            deployment.daemon().chunks_collected()
        );
        let _ = deployment.drive_download(&format!("part-peer-{round}"), 0, file, 1, &[]);
        round += 1;
        std::thread::sleep(Duration::from_millis(100));
    }

    let outcome = deployment.finish(SimTime::from_secs(60), 4, 1, Duration::from_secs(10));
    assert_eq!(outcome.replay_divergence(), None);
    assert_eq!(outcome.metrics.double_merge_violation(), None);
    assert!(outcome.metrics.agents[0].chunks_merged >= 3);

    let _ = std::fs::remove_dir_all(&root);
}

/// A rate-capped link feeding a daemon whose WAL and checkpoint disks
/// fail on schedule.  A failed WAL append must refuse the ack (acked ⇒
/// durable), so the agent's resend timer redelivers until the disk
/// recovers; a failed snapshot must quarantine the stale file and keep
/// the daemon serving.  Both failures are visible in the metrics and
/// neither costs a record.
#[test]
fn wal_and_checkpoint_faults_keep_exactly_once_semantics() {
    let _obs = observe("walfault");
    let root = scratch_dir("walfault");

    let wal_faults = DiskFaults::none();
    wal_faults.inject(DiskFaultKind::Eio, Some(2));
    let ckpt_faults = DiskFaults::none();
    ckpt_faults.inject(DiskFaultKind::Eio, Some(1));

    let mut specs = vec![fixed_spec(b"trickle", FaultPlan::default())];
    specs[0].impair =
        Some(ImpairPlan { delay_ms: 1, rate_bytes_per_sec: 200_000, ..ImpairPlan::clean(0xBAD33) });

    let opts = LoopbackOptions {
        daemon: DaemonConfig {
            checkpoint: Some(CheckpointOptions::new(root.join("ckpt"))),
            heartbeat_timeout_ms: 5_000,
            wal_faults: Some(wal_faults),
            checkpoint_faults: Some(ckpt_faults),
            ..DaemonConfig::default()
        },
        spool_dir: Some(root.join("spool")),
        ..LoopbackOptions::default()
    };
    let deployment = LoopbackDeployment::start(specs, opts).expect("start deployment");
    assert!(deployment.wait_ready(Duration::from_secs(15)), "agent never became ready");

    let file = FileId::from_seed(b"trickle");
    let deadline = std::time::Instant::now() + Duration::from_secs(45);
    let mut round = 0u32;
    while deployment.daemon().chunks_collected() < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "chunks never merged past the WAL faults (got {})",
            deployment.daemon().chunks_collected()
        );
        let _ = deployment.drive_download(&format!("wal-peer-{round}"), 0, file, 1, &[]);
        round += 1;
        std::thread::sleep(Duration::from_millis(100));
    }

    let outcome = deployment.finish(SimTime::from_secs(60), 4, 1, Duration::from_secs(10));
    assert_eq!(outcome.replay_divergence(), None);
    assert_eq!(outcome.metrics.double_merge_violation(), None);

    // Both scheduled disk failures were hit and surfaced.
    assert_eq!(
        outcome.metrics.wal_append_failures, 2,
        "both injected WAL faults must be consumed and counted"
    );
    assert!(
        outcome.metrics.checkpoint_failures >= 1,
        "the injected snapshot fault must be counted"
    );

    let _ = std::fs::remove_dir_all(&root);
}

/// Overload protection, observed from a hostile client's seat: a sender
/// that ignores its granted window and floods a daemon whose merge queue
/// holds two chunks.  The daemon must shed the excess unacked (the sender
/// redelivers), shrink the advertised window on every ack it does issue,
/// and still merge every sequence exactly once.
#[test]
fn merge_queue_overload_sheds_and_shrinks_windows() {
    let _obs = observe("overload");
    let config = AgentConfig {
        id: HoneypotId(0),
        content: ContentStrategy::NoContent,
        files: FileStrategy::Fixed(Vec::new()),
        server: ServerInfo::new("overload-test", Ipv4::new(127, 0, 0, 1), 4661),
        ip_salt: 7,
        rng_seed: 7,
        heartbeat_ms: 50,
        collect_ms: 60,
        client_name: "flood-agent".into(),
    };
    let daemon = Daemon::start(
        DaemonConfig {
            heartbeat_timeout_ms: 60_000,
            merge_queue_limit: 2,
            // Deterministic pressure: 10 ms per merge guarantees a flood
            // outruns the drain no matter how the scheduler slices it.
            merge_stall_ms: 10,
            ..DaemonConfig::default()
        },
        vec![config.clone()],
        Box::new(|_, _, _| {}),
    )
    .expect("start daemon");

    let mut conn = ControlConn::connect(daemon.addr()).expect("connect");
    conn.set_read_timeout(Duration::from_millis(10)).expect("timeout");
    conn.send(&ControlMessage::Register { agent: 0, incarnation: 0, resume: false })
        .expect("register");
    let mut frontier = wait_ack(&mut conn, |m| match m {
        ControlMessage::RegisterAck { next_seq, .. } => Some(*next_seq),
        _ => None,
    });
    assert_eq!(frontier, 0);

    let chunk_for = |seq: u64| ControlMessage::LogUpload {
        agent: 0,
        seq,
        chunk: LogChunk {
            honeypot: HoneypotId(0),
            server: config.server.clone(),
            records: Vec::new(),
            shared_lists: SharedLists::new(),
            peer_names: Vec::new(),
            files: FileTable::new(),
        },
    };

    // Flood-and-redeliver until every sequence is acked AND both overload
    // reactions have been observed.  Shed chunks are simply never
    // acknowledged, so resending from the cumulative frontier is exactly
    // what a real agent's resend timer does; once the frontier is done,
    // the flood continues with duplicates (re-acked, never re-merged) to
    // keep the queue under pressure until a shrunken window is seen.
    const TOTAL: u64 = 64;
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let live = daemon.metrics();
        if frontier >= TOTAL && live.chunks_shed >= 1 && live.window_shrinks >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "overload never converged: frontier={frontier}/{TOTAL} shed={} shrinks={}",
            live.chunks_shed,
            live.window_shrinks
        );
        let base = if frontier < TOTAL { frontier } else { 0 };
        for seq in base..TOTAL.min(base + 32) {
            conn.send(&chunk_for(seq)).expect("upload");
        }
        let poll_until = std::time::Instant::now() + Duration::from_millis(150);
        for ev in conn.poll_until(poll_until).expect("poll") {
            if let ConnEvent::Msg(ControlMessage::ChunkAck { next_seq, .. }) = ev {
                frontier = frontier.max(next_seq);
            }
        }
    }

    conn.send(&ControlMessage::Goodbye { agent: 0, final_seq: TOTAL }).expect("goodbye");
    let (_log, metrics, order) =
        daemon.finish(SimTime::from_secs(60), 4, 1, Duration::from_millis(500));
    assert_eq!(metrics.double_merge_violation(), None);
    assert_eq!(metrics.agents[0].chunks_merged, TOTAL);
    assert_eq!(metrics.agents[0].merged_ranges, vec![(0, TOTAL - 1)]);
    assert_eq!(order.len() as u64, TOTAL, "every sequence merged exactly once");
}

/// Hostile-peer reaping: a connection that never says hello is cut at the
/// handshake deadline; a registered connection that goes silent is cut at
/// the idle deadline; garbage framing is cut immediately as a protocol
/// violation.  Each for its own counted reason.
#[test]
fn hostile_connections_are_reaped_for_visible_reasons() {
    let _obs = observe("hostile");
    let daemon = Daemon::start(
        DaemonConfig {
            heartbeat_timeout_ms: 60_000,
            handshake_timeout_ms: 200,
            idle_timeout_ms: 300,
            slow_loris_timeout_ms: 200,
            ..DaemonConfig::default()
        },
        vec![AgentConfig {
            id: HoneypotId(0),
            content: ContentStrategy::NoContent,
            files: FileStrategy::Fixed(Vec::new()),
            server: ServerInfo::new("reap-test", Ipv4::new(127, 0, 0, 1), 4661),
            ip_salt: 7,
            rng_seed: 7,
            heartbeat_ms: 50,
            collect_ms: 60,
            client_name: "reap-agent".into(),
        }],
        Box::new(|_, _, _| {}),
    )
    .expect("start daemon");

    // A socket that never speaks: handshake deadline.
    let _silent = std::net::TcpStream::connect(daemon.addr()).expect("connect silent");

    // A socket that speaks garbage: protocol violation, cut on sight.
    let mut garbage = std::net::TcpStream::connect(daemon.addr()).expect("connect garbage");
    garbage.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write garbage");

    // A properly registered connection that then goes silent: idle reap.
    let mut idle = ControlConn::connect(daemon.addr()).expect("connect idle");
    idle.set_read_timeout(Duration::from_millis(10)).expect("timeout");
    idle.send(&ControlMessage::Register { agent: 0, incarnation: 0, resume: false })
        .expect("register");
    wait_ack(&mut idle, |m| match m {
        ControlMessage::RegisterAck { next_seq, .. } => Some(*next_seq),
        _ => None,
    });

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let m = daemon.metrics();
        if m.handshake_timeouts >= 1 && m.protocol_violations >= 1 && m.idle_reaped >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "reap counters never converged: handshake={} protocol={} idle={}",
            m.handshake_timeouts,
            m.protocol_violations,
            m.idle_reaped
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    let (_log, metrics, _order) =
        daemon.finish(SimTime::from_secs(60), 4, 1, Duration::from_millis(200));
    assert!(metrics.handshake_timeouts >= 1);
    assert!(metrics.protocol_violations >= 1);
    assert!(metrics.idle_reaped >= 1);
}

/// The impairment shim is a *deterministic* adversary: the same plan and
/// stream replayed over the same offered traffic produces the identical
/// delivery timeline, byte for byte and millisecond for millisecond — and
/// a different seed produces a different one.  This is what makes every
/// chaos cell above reproducible from its seed.
#[test]
fn same_impair_seed_reproduces_the_same_timeline() {
    let _obs = observe("impair-replay");
    let plan = |seed: u64| ImpairPlan {
        drop_permille: 60,
        dup_permille: 40,
        reorder_permille: 120,
        delay_ms: 3,
        jitter_ms: 4,
        rate_bytes_per_sec: 100_000,
        partitions: vec![Partition { start_ms: 180, end_ms: 240 }],
        ..ImpairPlan::clean(seed)
    };

    fn timeline(plan: &ImpairPlan) -> Vec<(u64, Vec<u8>)> {
        let mut link = ImpairedLink::new(plan, 1);
        let mut out = Vec::new();
        let mut deliveries = Vec::new();
        for now in 0..600u64 {
            if now % 2 == 0 && now < 400 {
                let pkt = [(now % 251) as u8; 48];
                link.admit(now, &pkt);
            }
            out.clear();
            if link.due(now, &mut out) > 0 {
                deliveries.push((now, out.clone()));
            }
        }
        deliveries
    }

    let a = timeline(&plan(0xD5));
    let b = timeline(&plan(0xD5));
    assert!(!a.is_empty(), "the impaired link must deliver something");
    assert_eq!(a, b, "identical seeds must replay the identical timeline");

    let c = timeline(&plan(0xD6));
    assert_ne!(a, c, "a different seed must perturb the timeline");
}

/// Polls `conn` until a message matching `pick` arrives, returning its
/// extracted value (5 s budget).
fn wait_ack<T>(conn: &mut ControlConn, pick: impl Fn(&ControlMessage) -> Option<T>) -> T {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        for ev in conn.poll_until(deadline).expect("poll") {
            if let ConnEvent::Msg(m) = ev {
                if let Some(v) = pick(&m) {
                    return v;
                }
            }
        }
        assert!(std::time::Instant::now() < deadline, "expected control message never arrived");
    }
}
