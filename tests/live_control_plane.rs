//! Acceptance tests of the live control plane: a full loopback deployment
//! (manager daemon + eDonkey server + supervised agents over real TCP)
//! with injected faults, proved lossless against the in-process pipeline
//! by replaying the pre-transport chunk journal in daemon merge order.

use std::time::Duration;

use edonkey_honeypots::control::{
    DaemonConfig, FaultPlan, LoopbackDeployment, LoopbackOptions, LoopbackSpec,
};
use edonkey_honeypots::platform::{AdvertisedFile, ContentStrategy, FileStrategy};
use edonkey_honeypots::proto::FileId;
use netsim::SimTime;

fn fixed_spec(tag: &[u8], fault: FaultPlan) -> LoopbackSpec {
    let file = FileId::from_seed(tag);
    LoopbackSpec {
        content: ContentStrategy::NoContent,
        files: FileStrategy::Fixed(vec![AdvertisedFile::new(
            file,
            format!("{} file.avi", String::from_utf8_lossy(tag)),
            50_000_000,
        )]),
        fault,
        impair: None,
        spool_faults: None,
    }
}

/// The headline scenario from the issue: three agents, one killed right
/// after its first upload (must be declared dead and relaunched, its
/// upload stream resumed), one corrupting the CRC of its first upload
/// frame (must be re-requested, never merged twice), and the resulting
/// measurement must equal what the in-process pipeline produces from the
/// exact same chunks.
#[test]
fn loopback_deployment_survives_crash_and_corruption() {
    let specs = vec![
        fixed_spec(b"alpha", FaultPlan::default()),
        fixed_spec(b"bravo", FaultPlan { kill_after_chunk: Some(0), ..FaultPlan::default() }),
        fixed_spec(b"charlie", FaultPlan { corrupt_chunk_seq: Some(0), ..FaultPlan::default() }),
    ];
    let opts = LoopbackOptions { daemon: DaemonConfig::default(), ..LoopbackOptions::default() };
    let deployment = LoopbackDeployment::start(specs, opts).expect("start deployment");
    assert!(deployment.wait_ready(Duration::from_secs(10)), "agents never became ready");

    // Round 1: one download attempt against each honeypot, so every agent
    // has something to upload as chunk 0.
    for agent in 0..3u32 {
        let file = FileId::from_seed([b"alpha" as &[u8], b"bravo", b"charlie"][agent as usize]);
        assert!(
            deployment.drive_download(&format!("round1-peer-{agent}"), agent, file, 1, &[]),
            "agent {agent} honeypot did not answer"
        );
    }
    // All three chunk 0s must merge: the well-behaved one directly, the
    // corrupt one after a ChunkRetry, and the killer's right before it
    // dies (it crashes after the send, so the daemon still merges it).
    assert!(
        deployment.wait_chunks(3, Duration::from_secs(10)),
        "round-1 chunks never merged (got {})",
        deployment.daemon().chunks_collected()
    );

    // Agent 1 is now dead.  The supervision loop must notice the silence,
    // declare it dead, and relaunch it — exactly once.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while deployment.daemon().relaunch_count() < 1 {
        assert!(std::time::Instant::now() < deadline, "agent 1 was never relaunched");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(deployment.wait_ready(Duration::from_secs(10)), "relaunched agent never came back");

    // Round 2: traffic against every agent again — including the
    // relaunched incarnation, whose upload stream must resume past the
    // chunk its predecessor never saw acknowledged.
    for agent in 0..3u32 {
        let file = FileId::from_seed([b"alpha" as &[u8], b"bravo", b"charlie"][agent as usize]);
        assert!(
            deployment.drive_download(&format!("round2-peer-{agent}"), agent, file, 1, &[]),
            "agent {agent} honeypot did not answer after relaunch"
        );
    }
    assert!(
        deployment.wait_chunks(6, Duration::from_secs(10)),
        "round-2 chunks never merged (got {})",
        deployment.daemon().chunks_collected()
    );

    let outcome = deployment.finish(SimTime::from_secs(60), 4, 1, Duration::from_secs(5));

    // The measurement itself: records from both rounds, through two
    // sockets each, all accounted for.
    assert!(!outcome.log.records.is_empty(), "live measurement must carry records");
    assert_eq!(outcome.log.honeypots.len(), 3);
    assert!(
        outcome.log.records.len() >= 6,
        "expected hellos from both rounds, got {} records",
        outcome.log.records.len()
    );

    // Metrics show exactly the injected faults: one relaunch (the killed
    // agent), one chunk retry (the corrupted frame), and the relaunched
    // incarnation registered with resume.
    assert_eq!(outcome.metrics.total_relaunches(), 1, "exactly the injected crash");
    assert_eq!(outcome.metrics.agents[1].relaunches, 1);
    assert_eq!(outcome.metrics.total_chunk_retries(), 1, "exactly the injected corruption");
    assert_eq!(outcome.metrics.agents[2].chunk_retries, 1);
    assert_eq!(outcome.metrics.corrupt_frames, 1);
    assert!(outcome.metrics.total_resumes() >= 1, "the relaunch must resume the stream");
    assert_eq!(outcome.metrics.agents[1].deaths, 1);
    assert!(outcome.metrics.total_heartbeats() > 0);

    // The equality proof: replaying the pre-transport journal through a
    // fresh in-process manager in daemon merge order reproduces the live
    // measurement exactly — the control plane added and lost nothing.
    assert_eq!(outcome.replay_divergence(), None);

    // The metrics JSON report is well-formed enough for the runner.
    let json = outcome.metrics.to_json();
    assert!(json.contains("\"relaunches\": 1"));
    assert!(json.contains("\"chunk_retries\": 1"));
}

/// A truncated upload frame (half the bytes, then the connection drops)
/// must not lose or duplicate the chunk: the agent reconnects with
/// `resume`, learns the daemon's position, and re-sends the clean frame.
#[test]
fn truncated_upload_resumes_without_loss() {
    let specs = vec![fixed_spec(
        b"trunc",
        FaultPlan { truncate_chunk_seq: Some(0), ..FaultPlan::default() },
    )];
    let deployment =
        LoopbackDeployment::start(specs, LoopbackOptions::default()).expect("start deployment");
    assert!(deployment.wait_ready(Duration::from_secs(10)));

    let file = FileId::from_seed(b"trunc");
    assert!(deployment.drive_download("trunc-peer", 0, file, 1, &[]));
    assert!(
        deployment.wait_chunks(1, Duration::from_secs(10)),
        "truncated chunk never made it through the resume path"
    );

    let outcome = deployment.finish(SimTime::from_secs(60), 4, 1, Duration::from_secs(5));
    assert!(!outcome.log.records.is_empty());
    assert!(outcome.metrics.total_resumes() >= 1, "the reconnect must register as a resume");
    assert_eq!(outcome.metrics.total_relaunches(), 0, "a reconnect is not a relaunch");
    assert_eq!(outcome.replay_divergence(), None);
}

/// A clean two-agent run: no faults, no relaunches, no retries — and the
/// replay equality still holds (the proof is not vacuous only under
/// faults).
#[test]
fn clean_deployment_is_faultless_and_lossless() {
    let specs = vec![
        fixed_spec(b"clean-a", FaultPlan::default()),
        fixed_spec(b"clean-b", FaultPlan::default()),
    ];
    let deployment =
        LoopbackDeployment::start(specs, LoopbackOptions::default()).expect("start deployment");
    assert!(deployment.wait_ready(Duration::from_secs(10)));

    for (agent, tag) in [(0u32, b"clean-a" as &[u8]), (1, b"clean-b")] {
        assert!(deployment.drive_download("clean-peer", agent, FileId::from_seed(tag), 1, &[]));
    }
    assert!(deployment.wait_chunks(2, Duration::from_secs(10)));

    let outcome = deployment.finish(SimTime::from_secs(60), 4, 1, Duration::from_secs(5));
    assert_eq!(outcome.metrics.total_relaunches(), 0);
    assert_eq!(outcome.metrics.total_chunk_retries(), 0);
    assert_eq!(outcome.metrics.corrupt_frames, 0);
    assert_eq!(outcome.metrics.agents.len(), 2);
    assert!(outcome.metrics.agents.iter().all(|a| a.registrations >= 1));
    assert!(!outcome.log.records.is_empty());
    assert_eq!(outcome.replay_divergence(), None);
}
